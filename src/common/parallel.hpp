/**
 * @file
 * Minimal parallel-execution engine for embarrassingly-parallel sweep
 * loops (DSE candidates, partition searches, bench config points).
 * C++20 std::jthread only — no external dependencies.
 *
 * Determinism contract: parallelFor hands each worker indices from a
 * shared atomic counter, so the *order* of execution is nondeterministic
 * but the mapping index -> work item is fixed. Callers store results by
 * index into a pre-sized vector, making parallel output bit-identical to
 * the sequential run (enforced by tests/parallel_test.cpp). Workers must
 * not share mutable state; each owns its own Simulator/DramMemory.
 */

#ifndef SCALESIM_COMMON_PARALLEL_HH
#define SCALESIM_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scalesim
{

/**
 * Resolve a jobs request to a concrete worker count.
 *  - 0 means "auto": the SCALESIM_JOBS environment variable if set,
 *    otherwise std::thread::hardware_concurrency().
 *  - Any other value is used as-is (clamped to >= 1).
 */
unsigned resolveJobs(unsigned requested);

/**
 * Fixed-size pool of std::jthread workers draining a task queue.
 * Tasks may be submitted from any thread; wait() blocks until the
 * queue is empty and every in-flight task has finished.
 */
class ThreadPool
{
  public:
    /** Spawn `threads` workers (resolved via resolveJobs). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned threadCount() const { return threadCount_; }

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have completed. */
    void wait();

  private:
    void workerLoop(std::stop_token stop);

    unsigned threadCount_;
    std::mutex mutex_;
    std::condition_variable_any taskReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> tasks_;
    std::uint64_t inFlight_ = 0;
    std::vector<std::jthread> workers_; // last: joins before members die
};

/**
 * Run body(i) for every i in [0, n) on up to `jobs` threads.
 * jobs <= 1 (after resolveJobs for jobs == 1; pass 0 for auto) runs
 * inline on the calling thread, byte-identical to a plain loop. The
 * first exception thrown by any body is rethrown on the caller after
 * all workers stop.
 */
void parallelFor(std::uint64_t n, unsigned jobs,
                 const std::function<void(std::uint64_t)>& body);

} // namespace scalesim

#endif // SCALESIM_COMMON_PARALLEL_HH
