# Empty dependencies file for fig05_sparse_memory.
# This may be replaced when dependencies are built.
