/**
 * @file
 * CPI-stack cycle accounting: every core cycle of a run is attributed
 * to exactly one bucket, so `total()` equals the simulated cycle count
 * by construction and the InvariantAuditor can pin the conservation
 * law `Σ buckets == totalCycles` per layer and per run.
 *
 * Attribution follows the one-cycle-one-bucket rule at component
 * boundaries: the component that *stalled the core* owns the cycle,
 * and stall cycles whose root cause lives below the memory front-end
 * (prefetch-miss stalls) are apportioned across the backend components
 * (L2 arbiter, DRAM queue, DRAM service, refresh shadow) pro-rata to
 * the per-layer latency each backend component contributed.
 */

#ifndef SCALESIM_OBS_CPI_HH
#define SCALESIM_OBS_CPI_HH

#include <cstdint>
#include <string_view>

namespace scalesim::obs
{

class StatsRegistry;

/** One bucket per root cause; see file comment. */
struct CpiStack
{
    std::uint64_t compute = 0;      ///< systolic array busy
    std::uint64_t vectorUnit = 0;   ///< SIMD post-processing ops
    std::uint64_t drain = 0;        ///< ofmap writeback drain stall
    std::uint64_t bandwidth = 0;    ///< write-queue bandwidth stall
    std::uint64_t prefetchMiss = 0; ///< front-end miss, cause on-chip
    std::uint64_t l2Wait = 0;       ///< L2-arbiter wait (multicore)
    std::uint64_t dramQueue = 0;    ///< DRAM controller queue wait
    std::uint64_t dramService = 0;  ///< DRAM bank/bus service
    std::uint64_t refresh = 0;      ///< refresh-shadow wait

    /** Number of buckets, for index-based iteration in writers. */
    static constexpr unsigned kBucketCount = 9;

    /** Stable bucket name for element `i` (registration order). */
    static const char* bucketName(unsigned i);

    std::uint64_t bucketValue(unsigned i) const;

    /** Sum of every bucket — the conserved quantity. */
    std::uint64_t total() const;

    /** Add `other`, each bucket scaled by `reps` repetitions. */
    void accumulate(const CpiStack& other, std::uint64_t reps = 1);

    /**
     * Register as a vector stat `name` with one element per bucket.
     * Every bucket is always emitted (schema-stable dumps), so the
     * dump's `::total` line equals the owning scope's totalCycles.
     */
    void registerStats(StatsRegistry& reg, std::string_view name,
                       std::string_view desc) const;
};

} // namespace scalesim::obs

#endif // SCALESIM_OBS_CPI_HH
