file(REMOVE_RECURSE
  "CMakeFiles/scalesim_systolic.dir/demand.cpp.o"
  "CMakeFiles/scalesim_systolic.dir/demand.cpp.o.d"
  "CMakeFiles/scalesim_systolic.dir/mapping.cpp.o"
  "CMakeFiles/scalesim_systolic.dir/mapping.cpp.o.d"
  "CMakeFiles/scalesim_systolic.dir/memory.cpp.o"
  "CMakeFiles/scalesim_systolic.dir/memory.cpp.o.d"
  "CMakeFiles/scalesim_systolic.dir/scratchpad.cpp.o"
  "CMakeFiles/scalesim_systolic.dir/scratchpad.cpp.o.d"
  "CMakeFiles/scalesim_systolic.dir/trace_io.cpp.o"
  "CMakeFiles/scalesim_systolic.dir/trace_io.cpp.o.d"
  "libscalesim_systolic.a"
  "libscalesim_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalesim_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
