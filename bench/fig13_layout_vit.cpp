/**
 * @file
 * Reproduces Fig. 13: the Fig. 12 layout-slowdown study on ViT (the
 * six distinct encoder GEMM shapes of ViT-base), 128x128 array.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "layout/layout.hpp"

using namespace scalesim;
using namespace scalesim::layout;
using namespace scalesim::systolic;

namespace
{

struct BwBanks
{
    std::uint32_t bandwidth;
    std::uint32_t banks;
};

constexpr BwBanks kConfigs[] = {{128, 2}, {128, 8},  {128, 32},
                                {256, 8}, {256, 32}, {256, 128}};
constexpr int kNumConfigs = sizeof(kConfigs) / sizeof(kConfigs[0]);

void
evaluateDataflow(const std::vector<LayerSpec>& layers, Dataflow df,
                 std::uint32_t array, double out[kNumConfigs])
{
    double sum[kNumConfigs] = {};
    for (const auto& layer : layers) {
        const GemmDims gemm = layer.toGemm();
        MemoryConfig mem;
        const OperandMap operands(gemm, mem);
        DemandGenerator gen(gemm, df, array, array, operands);
        std::vector<BankConflictEvaluator> evals;
        evals.reserve(kNumConfigs);
        std::vector<DemandVisitor*> sinks;
        for (const auto& c : kConfigs) {
            LayoutModelConfig cfg;
            cfg.enabled = true;
            cfg.banks = c.banks;
            cfg.portsPerBank = 1;
            cfg.onChipBandwidth = c.bandwidth;
            evals.emplace_back(cfg,
                               OperandLayouts::forGemm(
                                   gemm, cfg, LayoutScheme::RowMajor));
        }
        for (auto& e : evals)
            sinks.push_back(&e);
        TeeVisitor tee(std::move(sinks));
        gen.run(tee);
        for (int i = 0; i < kNumConfigs; ++i)
            sum[i] += evals[static_cast<std::size_t>(i)].slowdown();
    }
    for (int i = 0; i < kNumConfigs; ++i)
        out[i] = sum[i] / static_cast<double>(layers.size());
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Fig. 13: layout slowdown vs (bandwidth, banks), "
                "128x128, ViT-base encoder GEMMs ===\n");
    const Topology vit = workloads::vit(workloads::VitVariant::Base);
    std::vector<LayerSpec> layers(vit.layers.begin() + 1,
                                  vit.layers.end() - 1);

    benchutil::Table table({10, 12, 12, 12, 12, 12, 12});
    std::vector<std::string> header = {"dataflow"};
    for (const auto& c : kConfigs)
        header.push_back(format("(%u,%u)", c.bandwidth, c.banks));
    table.row(header);
    table.rule();

    bool banks_help = true;
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        double slow[kNumConfigs];
        evaluateDataflow(layers, df, 128, slow);
        std::vector<std::string> row = {toString(df)};
        for (int i = 0; i < kNumConfigs; ++i)
            row.push_back(benchutil::fmt("%.2fx", slow[i]));
        table.row(row);
        if (slow[0] < slow[2] || slow[3] < slow[5])
            banks_help = false;
    }
    table.rule();
    std::printf("more banks at fixed bandwidth never increase "
                "slowdown: %s\n",
                banks_help ? "yes" : "NO");
    return 0;
}
