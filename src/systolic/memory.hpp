/**
 * @file
 * Main-memory abstraction seen by the scratchpad: burst transactions
 * with per-request round-trip completion times. Two implementations
 * exist — the v2-style fixed-bandwidth model (here) and the detailed
 * DRAM model (src/dram, adapted in src/core) — plus the finite request
 * queues of §V-A.2 that stall the accelerator when full.
 */

#ifndef SCALESIM_SYSTOLIC_MEMORY_HH
#define SCALESIM_SYSTOLIC_MEMORY_HH

#include <queue>
#include <vector>

#include "common/types.hpp"

namespace scalesim::systolic
{

/** Aggregate transaction statistics of a main-memory model. */
struct MemoryStats
{
    Count readRequests = 0;
    Count writeRequests = 0;
    Count readWords = 0;
    Count writeWords = 0;
    /** Sum of (completion - issue) over reads, for mean latency. */
    Cycle totalReadLatency = 0;
    Cycle totalWriteLatency = 0;

    /**
     * Component decomposition of read latency, used by the CPI-stack
     * layer as apportionment weights (each model reports them in its
     * native clock — only their ratios matter, so no clock-domain
     * conversion is done):
     *   readPortWait — wait behind other cores at a shared L2/arbiter
     *   readQueueWait — wait in the controller queue / behind the bus
     *   readRefresh — wait for a refresh window to complete
     *   readService — actual bank access + data transfer
     * Models without a given structure leave its component 0.
     */
    Cycle readPortWait = 0;
    Cycle readQueueWait = 0;
    Cycle readRefresh = 0;
    Cycle readService = 0;

    double
    avgReadLatency() const
    {
        return readRequests
            ? static_cast<double>(totalReadLatency) / readRequests : 0.0;
    }
    double
    avgWriteLatency() const
    {
        return writeRequests
            ? static_cast<double>(totalWriteLatency) / writeRequests
            : 0.0;
    }

    void
    merge(const MemoryStats& other)
    {
        readRequests += other.readRequests;
        writeRequests += other.writeRequests;
        readWords += other.readWords;
        writeWords += other.writeWords;
        totalReadLatency += other.totalReadLatency;
        totalWriteLatency += other.totalWriteLatency;
        readPortWait += other.readPortWait;
        readQueueWait += other.readQueueWait;
        readRefresh += other.readRefresh;
        readService += other.readService;
    }
};

/**
 * Main-memory model interface. All times are in core (compute) cycles.
 * issueRead returns the cycle the data lands in the scratchpad;
 * issueWrite returns the cycle the controller accepts the write (writes
 * are posted, per §V-A.2).
 */
class MainMemory
{
  public:
    virtual ~MainMemory() = default;

    virtual Cycle issueRead(Addr addr, Count words, Cycle now) = 0;
    virtual Cycle issueWrite(Addr addr, Count words, Cycle now) = 0;

    /**
     * Cycles the most recent issueRead/issueWrite spent waiting behind
     * other traffic before its transfer started (0 for models without
     * a shared serialization point). Lets a decorator attribute
     * contention wait per requester in a shared-timeline co-simulation.
     */
    virtual Cycle lastIssueWait() const { return 0; }

    const MemoryStats& stats() const { return stats_; }
    void clearStats() { stats_ = {}; }

  protected:
    MemoryStats stats_;
};

/**
 * SCALE-Sim v2's monolithic main memory: a fixed-bandwidth bus with a
 * fixed base latency and no contention structure beyond serialization.
 */
class BandwidthMemory : public MainMemory
{
  public:
    /**
     * @param words_per_cycle sustained words per core cycle
     * @param base_latency    flat added latency per transaction
     */
    explicit BandwidthMemory(double words_per_cycle,
                             Cycle base_latency = 0);

    Cycle issueRead(Addr addr, Count words, Cycle now) override;
    Cycle issueWrite(Addr addr, Count words, Cycle now) override;

    Cycle lastIssueWait() const override { return lastWait_; }

    /**
     * Rewind the bus cursor to time zero. Used when several agents
     * that run concurrently in real time are simulated one after the
     * other (their contention is then approximated by a static
     * bandwidth share instead of the shared cursor).
     */
    void resetTimeline() { busFree_ = 0.0; }

  private:
    Cycle busOccupy(Count words, Cycle now);

    double wordsPerCycle_;
    Cycle baseLatency_;
    double busFree_ = 0.0;
    Cycle lastWait_ = 0;
};

/**
 * Finite request queue (§V-A.2): entries are occupied from issue until
 * the transaction's completion time; an issue attempted while full is
 * delayed until the earliest retirement.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(std::uint32_t capacity);

    /**
     * Earliest cycle >= now at which a slot is free. Pure query: no
     * stall accounting, so callers may poll it repeatedly.
     */
    Cycle slotAvailable(Cycle now);

    /**
     * Acquire issue permission for one request: returns the earliest
     * cycle >= now it can enter the queue and charges the wait to
     * fullStallCycles() exactly once. Call once per request, follow
     * with push().
     */
    Cycle reserve(Cycle now);

    /** Occupy a slot until `completion`. */
    void push(Cycle completion);

    /** Retire entries completed at or before `now`. */
    void drain(Cycle now);

    std::uint32_t capacity() const { return capacity_; }
    std::size_t occupancy() const { return inflight_.size(); }

    /** Cycles during which at least one issue was delayed by fullness. */
    Cycle fullStallCycles() const { return fullStalls_; }

  private:
    std::uint32_t capacity_;
    // Min-heap of in-flight completion times.
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>
        inflight_;
    Cycle fullStalls_ = 0;
};

} // namespace scalesim::systolic

#endif // SCALESIM_SYSTOLIC_MEMORY_HH
