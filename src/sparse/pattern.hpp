/**
 * @file
 * N:M sparsity patterns along the GEMM reduction (K) dimension, per the
 * paper's §IV: layer-wise sparsity keeps the first N of every M rows
 * (fixed ratio for the whole layer); row-wise sparsity assigns each
 * M-row block a randomized N <= M/2. The pattern doubles as the
 * KGatherMap the demand engine uses for gathered ifmap streaming.
 */

#ifndef SCALESIM_SPARSE_PATTERN_HH
#define SCALESIM_SPARSE_PATTERN_HH

#include <vector>

#include "common/rng.hpp"
#include "systolic/demand.hpp"

namespace scalesim::sparse
{

/** Block-granular N:M sparsity along K. */
class SparsityPattern : public systolic::KGatherMap
{
  public:
    /**
     * Layer-wise: every M-row block keeps its first `n` rows.
     * n == 0 or n == m yields a dense pattern.
     */
    static SparsityPattern layerWise(std::uint64_t dense_k,
                                     std::uint32_t n, std::uint32_t m);

    /**
     * Row-wise (OptimizedMapping): each block keeps a uniformly random
     * N in [1, m/2] rows (the paper constrains N <= M/2).
     */
    static SparsityPattern rowWise(std::uint64_t dense_k,
                                   std::uint32_t m, Rng& rng);

    /** Dense (identity) pattern. */
    static SparsityPattern dense(std::uint64_t dense_k);

    std::uint64_t denseK() const { return denseK_; }
    std::uint64_t compressedK() const override
    {
        return origIndex_.size();
    }
    std::uint64_t origK(std::uint64_t comp_k) const override;

    /** Block size M (0 for dense patterns). */
    std::uint32_t blockSize() const { return m_; }

    /** Kept rows per M-block, in K order. */
    const std::vector<std::uint32_t>& blockNnz() const
    {
        return nnzPerBlock_;
    }

    /** compressedK / denseK. */
    double density() const;

    /** Total nonzero elements for an N-column filter. */
    std::uint64_t nnzElements(std::uint64_t n_cols) const
    {
        return compressedK() * n_cols;
    }

  private:
    SparsityPattern(std::uint64_t dense_k, std::uint32_t m);
    void finalize();

    std::uint64_t denseK_;
    std::uint32_t m_;
    std::vector<std::uint32_t> nnzPerBlock_;
    std::vector<std::uint64_t> origIndex_;
};

} // namespace scalesim::sparse

#endif // SCALESIM_SPARSE_PATTERN_HH
