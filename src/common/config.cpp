#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/log.hpp"

namespace scalesim
{

namespace
{

std::string
canonical(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == ' ' || c == '_' || c == '\t')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

} // namespace

IniFile
IniFile::parseString(const std::string& text)
{
    IniFile ini;
    std::istringstream in(text);
    std::string line;
    std::string section = "general";
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == ';')
            continue;
        if (trimmed.front() == '[') {
            auto close = trimmed.find(']');
            if (close == std::string::npos)
                fatal("config line %d: unterminated section header",
                      line_no);
            section = trim(trimmed.substr(1, close - 1));
            continue;
        }
        auto eq = trimmed.find('=');
        if (eq == std::string::npos) {
            // SCALE-Sim cfg also allows "key : value".
            eq = trimmed.find(':');
        }
        if (eq == std::string::npos)
            fatal("config line %d: expected key = value", line_no);
        std::string key = trim(trimmed.substr(0, eq));
        std::string value = trim(trimmed.substr(eq + 1));
        if (key.empty())
            fatal("config line %d: empty key", line_no);
        ini.set(section, key, value);
    }
    return ini;
}

IniFile
IniFile::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file: %s", path.c_str());
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseString(buffer.str());
}

void
IniFile::set(std::string_view section, std::string_view key,
             const std::string& value)
{
    sections_[canonical(section)][canonical(key)] = value;
}

bool
IniFile::has(std::string_view section, std::string_view key) const
{
    auto sec = sections_.find(canonical(section));
    if (sec == sections_.end())
        return false;
    return sec->second.count(canonical(key)) > 0;
}

std::string
IniFile::getString(std::string_view section, std::string_view key,
                   const std::string& fallback) const
{
    auto sec = sections_.find(canonical(section));
    if (sec == sections_.end())
        return fallback;
    auto it = sec->second.find(canonical(key));
    return it == sec->second.end() ? fallback : it->second;
}

std::int64_t
IniFile::getInt(std::string_view section, std::string_view key,
                std::int64_t fallback) const
{
    std::string raw = getString(section, key);
    if (raw.empty())
        return fallback;
    char* end = nullptr;
    std::int64_t value = std::strtoll(raw.c_str(), &end, 0);
    if (end == raw.c_str() || *end != '\0')
        fatal("config %.*s.%.*s: '%s' is not an integer",
              static_cast<int>(section.size()), section.data(),
              static_cast<int>(key.size()), key.data(), raw.c_str());
    return value;
}

double
IniFile::getDouble(std::string_view section, std::string_view key,
                   double fallback) const
{
    std::string raw = getString(section, key);
    if (raw.empty())
        return fallback;
    char* end = nullptr;
    double value = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0')
        fatal("config %.*s.%.*s: '%s' is not a number",
              static_cast<int>(section.size()), section.data(),
              static_cast<int>(key.size()), key.data(), raw.c_str());
    return value;
}

bool
IniFile::getBool(std::string_view section, std::string_view key,
                 bool fallback) const
{
    std::string raw = canonical(getString(section, key));
    if (raw.empty())
        return fallback;
    if (raw == "true" || raw == "1" || raw == "yes" || raw == "on")
        return true;
    if (raw == "false" || raw == "0" || raw == "no" || raw == "off")
        return false;
    fatal("config %.*s.%.*s: '%s' is not a boolean",
          static_cast<int>(section.size()), section.data(),
          static_cast<int>(key.size()), key.data(), raw.c_str());
}

std::string
toString(SparseRep rep)
{
    switch (rep) {
      case SparseRep::Dense: return "dense";
      case SparseRep::Csr: return "csr";
      case SparseRep::Csc: return "csc";
      case SparseRep::EllpackBlock: return "ellpack_block";
    }
    return "dense";
}

SparseRep
sparseRepFromString(std::string_view text)
{
    std::string c = canonical(text);
    if (c == "dense")
        return SparseRep::Dense;
    if (c == "csr")
        return SparseRep::Csr;
    if (c == "csc")
        return SparseRep::Csc;
    if (c == "ellpackblock" || c == "blockedellpack" || c == "ellpack")
        return SparseRep::EllpackBlock;
    throw std::invalid_argument("unknown sparse representation: "
                                + std::string(text));
}

SimConfig
SimConfig::fromIni(const IniFile& ini)
{
    SimConfig cfg;
    cfg.runName = ini.getString("general", "run_name", cfg.runName);

    cfg.arrayRows = static_cast<std::uint32_t>(
        ini.getInt("architecture", "ArrayHeight", cfg.arrayRows));
    cfg.arrayCols = static_cast<std::uint32_t>(
        ini.getInt("architecture", "ArrayWidth", cfg.arrayCols));
    if (cfg.arrayRows == 0 || cfg.arrayCols == 0)
        fatal("array dimensions must be non-zero");

    cfg.dataflow = dataflowFromString(
        ini.getString("architecture", "Dataflow", "os"));
    std::string mode = ini.getString("general", "mode", "trace");
    cfg.mode = canonical(mode) == "analytical" ? SimMode::Analytical
                                               : SimMode::Trace;

    cfg.memory.ifmapSramKb = static_cast<std::uint64_t>(ini.getInt(
        "architecture", "IfmapSramSzkB",
        static_cast<std::int64_t>(cfg.memory.ifmapSramKb)));
    cfg.memory.filterSramKb = static_cast<std::uint64_t>(ini.getInt(
        "architecture", "FilterSramSzkB",
        static_cast<std::int64_t>(cfg.memory.filterSramKb)));
    cfg.memory.ofmapSramKb = static_cast<std::uint64_t>(ini.getInt(
        "architecture", "OfmapSramSzkB",
        static_cast<std::int64_t>(cfg.memory.ofmapSramKb)));
    cfg.memory.ifmapOffset = static_cast<Addr>(ini.getInt(
        "architecture", "IfmapOffset",
        static_cast<std::int64_t>(cfg.memory.ifmapOffset)));
    cfg.memory.filterOffset = static_cast<Addr>(ini.getInt(
        "architecture", "FilterOffset",
        static_cast<std::int64_t>(cfg.memory.filterOffset)));
    cfg.memory.ofmapOffset = static_cast<Addr>(ini.getInt(
        "architecture", "OfmapOffset",
        static_cast<std::int64_t>(cfg.memory.ofmapOffset)));
    cfg.memory.wordBytes = static_cast<std::uint32_t>(ini.getInt(
        "architecture", "WordBytes", cfg.memory.wordBytes));
    cfg.memory.bandwidthWordsPerCycle = ini.getDouble(
        "architecture", "Bandwidth", cfg.memory.bandwidthWordsPerCycle);
    cfg.memory.burstWords = static_cast<std::uint32_t>(ini.getInt(
        "architecture", "BurstWords", cfg.memory.burstWords));
    cfg.memory.issuePerCycle = static_cast<std::uint32_t>(ini.getInt(
        "architecture", "IssuePerCycle", cfg.memory.issuePerCycle));
    cfg.memory.prefetchDepth = static_cast<std::uint32_t>(ini.getInt(
        "architecture", "PrefetchDepth", cfg.memory.prefetchDepth));
    cfg.memory.im2colAddressing = ini.getBool(
        "architecture", "Im2colAddressing",
        cfg.memory.im2colAddressing);
    cfg.memory.recordFoldSpans = ini.getBool(
        "architecture", "RecordFoldSpans",
        cfg.memory.recordFoldSpans);
    cfg.foldCache = ini.getBool("architecture", "FoldCache",
                                cfg.foldCache);
    cfg.simdLanes = static_cast<std::uint32_t>(ini.getInt(
        "architecture", "SimdLanes", cfg.simdLanes));
    cfg.simdLatencyPerOp = static_cast<std::uint32_t>(ini.getInt(
        "architecture", "SimdLatency", cfg.simdLatencyPerOp));

    cfg.sparsity.enabled = ini.getBool("sparsity", "SparsitySupport",
                                       cfg.sparsity.enabled);
    cfg.sparsity.optimizedMapping = ini.getBool(
        "sparsity", "OptimizedMapping", cfg.sparsity.optimizedMapping);
    if (ini.has("sparsity", "SparseRep")) {
        cfg.sparsity.rep = sparseRepFromString(
            ini.getString("sparsity", "SparseRep"));
    }
    cfg.sparsity.blockSize = static_cast<std::uint32_t>(
        ini.getInt("sparsity", "BlockSize", cfg.sparsity.blockSize));
    cfg.sparsity.seed = static_cast<std::uint64_t>(ini.getInt(
        "sparsity", "Seed", static_cast<std::int64_t>(cfg.sparsity.seed)));

    cfg.dram.enabled = ini.getBool("memory", "DramModel",
                                   cfg.dram.enabled);
    cfg.dram.tech = ini.getString("memory", "Tech", cfg.dram.tech);
    cfg.dram.channels = static_cast<std::uint32_t>(
        ini.getInt("memory", "Channels", cfg.dram.channels));
    cfg.dram.ranksPerChannel = static_cast<std::uint32_t>(ini.getInt(
        "memory", "Ranks", cfg.dram.ranksPerChannel));
    cfg.dram.readQueueSize = static_cast<std::uint32_t>(ini.getInt(
        "memory", "ReadQueueSize", cfg.dram.readQueueSize));
    cfg.dram.writeQueueSize = static_cast<std::uint32_t>(ini.getInt(
        "memory", "WriteQueueSize", cfg.dram.writeQueueSize));
    cfg.dram.coreClockMhz = ini.getDouble("memory", "CoreClockMhz",
                                          cfg.dram.coreClockMhz);

    cfg.layout.enabled = ini.getBool("layout", "LayoutModel",
                                     cfg.layout.enabled);
    cfg.layout.banks = static_cast<std::uint32_t>(
        ini.getInt("layout", "Banks", cfg.layout.banks));
    cfg.layout.portsPerBank = static_cast<std::uint32_t>(
        ini.getInt("layout", "PortsPerBank", cfg.layout.portsPerBank));
    cfg.layout.onChipBandwidth = static_cast<std::uint32_t>(ini.getInt(
        "layout", "OnChipBandwidth", cfg.layout.onChipBandwidth));

    cfg.energy.enabled = ini.getBool("energy", "EnergyModel",
                                     cfg.energy.enabled);
    cfg.energy.rowSize = static_cast<std::uint32_t>(
        ini.getInt("energy", "RowSize", cfg.energy.rowSize));
    cfg.energy.bankSize = static_cast<std::uint32_t>(
        ini.getInt("energy", "BankSize", cfg.energy.bankSize));
    cfg.energy.frequencyGhz = ini.getDouble("energy", "FrequencyGhz",
                                            cfg.energy.frequencyGhz);
    cfg.energy.node = ini.getString("energy", "Node", cfg.energy.node);
    return cfg;
}

void
SimConfig::validate() const
{
    if (arrayRows == 0 || arrayCols == 0)
        fatal("array dimensions must be non-zero (%ux%u)", arrayRows,
              arrayCols);
    if (simdLanes == 0)
        fatal("SimdLanes must be non-zero");
    if (memory.wordBytes == 0)
        fatal("WordBytes must be non-zero");
    if (memory.burstWords == 0)
        fatal("BurstWords must be non-zero");
    if (memory.issuePerCycle == 0)
        fatal("IssuePerCycle must be non-zero");
    if (memory.prefetchDepth == 0)
        fatal("PrefetchDepth must be non-zero");
    if (memory.bandwidthWordsPerCycle <= 0.0)
        fatal("Bandwidth must be positive");
    if (memory.ifmapSramKb == 0 || memory.filterSramKb == 0
        || memory.ofmapSramKb == 0) {
        fatal("SRAM sizes must be non-zero");
    }
    // Operand regions must not overlap (addresses are word-granular
    // and region extents are workload-dependent, so require distinct,
    // ordered bases with generous gaps).
    if (memory.ifmapOffset >= memory.filterOffset
        || memory.filterOffset >= memory.ofmapOffset) {
        fatal("operand address regions must be ordered "
              "ifmap < filter < ofmap");
    }
    if (sparsity.optimizedMapping && sparsity.blockSize < 2)
        fatal("row-wise sparsity needs BlockSize >= 2 (got %u)",
              sparsity.blockSize);
    if (dram.enabled) {
        if (dram.channels == 0)
            fatal("DRAM needs at least one channel");
        if (dram.readQueueSize == 0 || dram.writeQueueSize == 0)
            fatal("request queues must be non-empty");
        if (dram.coreClockMhz <= 0.0)
            fatal("CoreClockMhz must be positive");
    }
    if (layout.enabled) {
        if (layout.banks == 0 || layout.portsPerBank == 0)
            fatal("layout model needs non-zero banks and ports");
        if (layout.onChipBandwidth == 0)
            fatal("OnChipBandwidth must be non-zero");
    }
    if (energy.enabled) {
        if (energy.rowSize == 0 || energy.bankSize == 0)
            fatal("energy RowSize/BankSize must be non-zero");
        if (energy.frequencyGhz <= 0.0)
            fatal("FrequencyGhz must be positive");
    }
}

SimConfig
SimConfig::load(const std::string& path)
{
    return fromIni(IniFile::load(path));
}

SimConfig
SimConfig::tpuV2Like()
{
    // TPU-v2-ish tensor core: 128x128 MXU, large unified buffers.
    SimConfig cfg;
    cfg.runName = "tpu_v2_like";
    cfg.arrayRows = 128;
    cfg.arrayCols = 128;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.memory.ifmapSramKb = 6144;
    cfg.memory.filterSramKb = 6144;
    cfg.memory.ofmapSramKb = 2048;
    cfg.memory.bandwidthWordsPerCycle = 100.0;
    return cfg;
}

SimConfig
SimConfig::tpuMemoryStudy()
{
    // Section V-C: TPU configuration, 128-entry queues, DDR4-2400.
    SimConfig cfg = tpuV2Like();
    cfg.runName = "tpu_memory_study";
    cfg.dram.enabled = true;
    cfg.dram.tech = "DDR4_2400";
    cfg.dram.channels = 1;
    cfg.dram.readQueueSize = 128;
    cfg.dram.writeQueueSize = 128;
    return cfg;
}

} // namespace scalesim
