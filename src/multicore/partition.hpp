/**
 * @file
 * Spatio-temporal multi-core workload partitioning (paper §III-A).
 * With Pr x Pc cores and the Table-II mapping (Sr, Sc, T), the three
 * schemes and their runtimes are:
 *
 *  Spatial (Eq. 1):          (2R+C+T-2)        * ceil(Sr/(Pr R)) * ceil(Sc/(Pc C))
 *  Spatio-temporal 1 (Eq. 2): (2R+C+ceil(T/Pc)-2) * ceil(Sr/(Pr R)) * ceil(Sc/C)
 *  Spatio-temporal 2 (Eq. 3): (2R+C+ceil(T/Pr)-2) * ceil(Sr/R)      * ceil(Sc/(Pc C))
 *
 * The memory-footprint model mirrors Fig. 3/4: each core holds its
 * input (Sr-share x T-share) and weight (Sc-share x T-share)
 * partitions plus its output share; the shared-L2 variant (§III-B)
 * deduplicates the partitions that cores in the same row/column would
 * otherwise replicate.
 */

#ifndef SCALESIM_MULTICORE_PARTITION_HH
#define SCALESIM_MULTICORE_PARTITION_HH

#include <vector>

#include "common/types.hpp"
#include "systolic/mapping.hpp"

namespace scalesim::multicore
{

/** Partitioning schemes of §III-A. */
enum class PartitionScheme
{
    Spatial,         ///< Eq. 1: split Sr across Pr, Sc across Pc
    SpatioTemporal1, ///< Eq. 2: split Sr across Pr, T across Pc
    SpatioTemporal2, ///< Eq. 3: split Sc across Pc, T across Pr
};

std::string toString(PartitionScheme scheme);

/** One (scheme, Pr, Pc) evaluation. */
struct PartitionEval
{
    PartitionScheme scheme = PartitionScheme::Spatial;
    std::uint64_t pr = 1;
    std::uint64_t pc = 1;

    /** Per-core runtime (all cores finish together when uniform). */
    Cycle cycles = 0;

    /** Sum of per-core operand partitions (no sharing), words. */
    std::uint64_t footprintWords = 0;

    /** Footprint with shared-L2 deduplication (§III-B), words. */
    std::uint64_t l2FootprintWords = 0;

    std::uint64_t cores() const { return pr * pc; }
};

/** Evaluate one scheme/grid for a GEMM on R x C cores' arrays. */
PartitionEval evaluatePartition(const GemmDims& gemm, Dataflow df,
                                std::uint32_t array_rows,
                                std::uint32_t array_cols,
                                std::uint64_t pr, std::uint64_t pc,
                                PartitionScheme scheme);

/**
 * Evaluate every (pr, pc) factorization of `cores` under `scheme`.
 * `jobs` spreads the candidate evaluations over worker threads
 * (1 = sequential, 0 = auto); results are stored by factorization
 * index, so the output order and values are identical for any jobs.
 */
std::vector<PartitionEval>
enumeratePartitions(const GemmDims& gemm, Dataflow df,
                    std::uint32_t array_rows, std::uint32_t array_cols,
                    std::uint64_t cores, PartitionScheme scheme,
                    unsigned jobs = 1);

/** Least-cycles choice; footprint breaks ties. */
PartitionEval bestByCycles(const std::vector<PartitionEval>& evals);

/** Least-footprint choice; cycles break ties. */
PartitionEval bestByFootprint(const std::vector<PartitionEval>& evals);

} // namespace scalesim::multicore

#endif // SCALESIM_MULTICORE_PARTITION_HH
