/**
 * @file
 * scalesim_serve: the sweep-as-a-service front end. Speaks
 * newline-delimited JSON over stdin/stdout (see serve/server.hpp for
 * the protocol) and keeps a content-addressed per-layer result cache
 * across requests, optionally persisted to disk. Bridge to a Unix
 * socket with e.g.
 *
 *   socat UNIX-LISTEN:/tmp/scalesim.sock,fork EXEC:"scalesim_serve"
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.hpp"
#include "common/log.hpp"
#include "serve/server.hpp"

using namespace scalesim;

namespace
{

void
usage()
{
    std::cerr <<
        "usage: scalesim_serve [-c config.cfg] [--cache-file PATH]\n"
        "                      [--cache-budget-mb N] [--jobs N]\n"
        "  -c                base INI config; per-request \"config\"\n"
        "                    overlays apply on top\n"
        "  --cache-file      persist the layer-result cache to PATH\n"
        "                    (loaded at startup, saved at shutdown)\n"
        "  --cache-budget-mb LRU byte budget for the cache in MiB\n"
        "                    (0 = unlimited, the default)\n"
        "  --jobs            default worker threads for sweep\n"
        "                    requests that do not specify \"jobs\"\n"
        "Reads one JSON request per line from stdin, writes one JSON\n"
        "response per line to stdout; exits on EOF or a shutdown\n"
        "request.\n";
}

} // namespace

int
main(int argc, char** argv)
{
    serve::Server::Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "-c") {
            options.baseConfig = IniFile::load(next());
        } else if (arg == "--cache-file") {
            options.cacheFile = next();
        } else if (arg == "--cache-budget-mb") {
            options.cacheBudgetBytes =
                std::strtoull(next().c_str(), nullptr, 10)
                * 1024 * 1024;
        } else if (arg == "--jobs") {
            options.defaultJobs = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else {
            usage();
            return arg == "-h" || arg == "--help" ? 0 : 1;
        }
    }
    try {
        serve::Server server(std::move(options));
        return server.serve(std::cin, std::cout);
    } catch (const FatalError& e) {
        std::cerr << "scalesim_serve: " << e.what() << "\n";
        return 1;
    }
}
