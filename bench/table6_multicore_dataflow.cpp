/**
 * @file
 * Reproduces Table VI: latency and energy of the two stationary
 * dataflows on iso-compute designs — one 128x128 core vs 16 cores of
 * 32x32 — for ViT-base, and the EdP conclusion that multi-core
 * narrows the latency gap enough for the losing dataflow to win EdP.
 *
 * Label note (see DESIGN.md): the paper's Table II swaps the IS/WS
 * labels relative to SCALE-Sim's conventional operand semantics; the
 * paper's "ws" corresponds to our conventional IS and vice versa. We
 * report the conventional labels and print the paper-label ratio.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"
#include "multicore/system.hpp"

using namespace scalesim;

namespace
{

struct Design
{
    Cycle latency = 0;
    double energyMj = 0.0;
    double edp() const
    {
        return static_cast<double>(latency) * energyMj;
    }
};

/** Single big core: plain simulator run. */
Design
singleCore(const Topology& topo, Dataflow df)
{
    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 128;
    cfg.dataflow = df;
    cfg.mode = SimMode::Analytical;
    cfg.energy.enabled = true;
    cfg.memory.bandwidthWordsPerCycle = 100.0;
    core::Simulator sim(cfg);
    const auto run = sim.run(topo);
    return {run.totalCycles, run.totalEnergy.totalMj()};
}

/**
 * 16 x 32x32 cores, 4x4 spatial partitioning: latency from the
 * multi-core simulator; energy from per-core partition runs x 16.
 */
Design
multiCore(const Topology& topo, Dataflow df)
{
    multicore::TensorCoreConfig core;
    core.arrayRows = core.arrayCols = 32;
    const auto mc_cfg = multicore::MultiCoreConfig::homogeneous(
        core, 4, 4, multicore::PartitionScheme::Spatial);
    multicore::MultiCoreSimulator mc(mc_cfg);

    SimConfig cfg;
    cfg.arrayRows = cfg.arrayCols = 32;
    cfg.dataflow = df;
    cfg.mode = SimMode::Analytical;
    cfg.energy.enabled = true;
    cfg.memory.bandwidthWordsPerCycle = 100.0;
    core::Simulator per_core(cfg);

    Design design;
    for (const auto& layer : topo.layers) {
        const auto result = mc.runLayer(layer, df);
        design.latency += result.makespan * layer.repetitions;
        // Per-core energy: partition the mapped Sr/Sc dims 4x4 and run
        // the per-core share; scale by 16 cores.
        const GemmDims gemm = layer.toGemm();
        const MappedDims mapped = systolic::mapGemmConventional(gemm,
                                                                df);
        GemmDims share = gemm;
        switch (df) {
          case Dataflow::WeightStationary:
            share.k = ceilDiv(mapped.sr, 4);
            share.n = ceilDiv(mapped.sc, 4);
            break;
          case Dataflow::InputStationary:
            share.k = ceilDiv(mapped.sr, 4);
            share.m = ceilDiv(mapped.sc, 4);
            break;
          case Dataflow::OutputStationary:
            share.m = ceilDiv(mapped.sr, 4);
            share.n = ceilDiv(mapped.sc, 4);
            break;
        }
        LayerSpec share_layer = LayerSpec::gemm(
            layer.name, share.m, share.n, share.k);
        const auto lr = per_core.runLayer(share_layer);
        design.energyMj += lr.energyBreakdown.totalMj() * 16.0
            * layer.repetitions;
    }
    return design;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Table VI: single 128x128 vs 16 x 32x32, ViT-base "
                "===\n");
    const Topology topo = workloads::vit(workloads::VitVariant::Base);

    const Design ws1 = singleCore(topo, Dataflow::WeightStationary);
    const Design is1 = singleCore(topo, Dataflow::InputStationary);
    const Design ws16 = multiCore(topo, Dataflow::WeightStationary);
    const Design is16 = multiCore(topo, Dataflow::InputStationary);

    benchutil::Table table({26, 14, 12, 14});
    table.row({"design/dataflow", "latency", "energy mJ", "EdP"});
    table.rule();
    auto row = [&](const char* label, const Design& d) {
        table.row({label, benchutil::num(d.latency),
                   benchutil::fmt("%.2f", d.energyMj),
                   benchutil::fmt("%.0f", d.edp())});
    };
    row("1 x 128x128, ws(conv)", ws1);
    row("1 x 128x128, is(conv)", is1);
    row("16 x 32x32, ws(conv)", ws16);
    row("16 x 32x32, is(conv)", is16);
    table.rule();

    // Paper-label ratio ("ws/is" under the paper's Table II labels
    // corresponds to conventional ws/is inverted; report both).
    const double single_ratio = static_cast<double>(ws1.latency)
        / static_cast<double>(is1.latency);
    const double multi_ratio = static_cast<double>(ws16.latency)
        / static_cast<double>(is16.latency);
    std::printf("latency ratio ws/is (conventional labels): "
                "single-core %.2f, multi-core %.2f (paper magnitudes: "
                "1.87 and 1.14 — the winning dataflow's lead shrinks "
                "with multi-core)\n",
                single_ratio, multi_ratio);
    const double gap_single = std::max(single_ratio,
                                       1.0 / single_ratio);
    const double gap_multi = std::max(multi_ratio, 1.0 / multi_ratio);
    std::printf("multi-core narrows the latency gap: %s (%.2fx -> "
                "%.2fx)\n",
                gap_multi < gap_single ? "yes" : "NO", gap_single,
                gap_multi);
    const double edp_ratio = ws16.edp() / is16.edp();
    std::printf("multi-core EdP ratio ws/is: %.2f (paper: the "
                "latency-losing dataflow wins EdP by 1.31x in "
                "multi-core; under our conventional mapping WS wins "
                "both metrics for ViT-base, so the gap narrows but "
                "does not flip — see EXPERIMENTS.md)\n", edp_ratio);
    return 0;
}
