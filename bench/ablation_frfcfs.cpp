/**
 * @file
 * Ablation: FR-FCFS reorder-window size and the row-hit streak cap in
 * the DRAM controller. Replays an interleaved multi-stream trace
 * (several row-local streams hitting the same banks, the pattern a
 * multi-core accelerator generates) across window sizes and reports
 * row-hit rate and makespan — the design choice our Ramulator
 * substitute exposes as a knob.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "dram/system.hpp"

using namespace scalesim;
using namespace scalesim::dram;

namespace
{

std::vector<TraceEntry>
interleavedStreams(const DramTiming& timing, int streams, int per)
{
    // Stream s reads sequentially within its own row region; entries
    // are interleaved round-robin, so an in-order controller thrashes.
    std::vector<TraceEntry> trace;
    const Addr region = static_cast<Addr>(timing.rowBytes)
        * timing.banksPerRank; // same bank, different rows
    for (int i = 0; i < per; ++i) {
        for (int s = 0; s < streams; ++s) {
            trace.push_back({static_cast<Cycle>(trace.size()),
                             static_cast<Addr>(s) * region
                                 + static_cast<Addr>(i) * 64,
                             false});
        }
    }
    return trace;
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: FR-FCFS reorder window (DRAM "
                "controller) ===\n");
    const DramTiming timing = timingPreset("DDR4_2400");
    const auto trace = interleavedStreams(timing, 4, 256);

    benchutil::Table table({10, 12, 12, 14, 14});
    table.row({"window", "row hits", "hit rate", "makespan",
               "avg rd lat"});
    table.rule();
    Cycle prev_makespan = ~static_cast<Cycle>(0);
    bool monotone = true;
    for (std::uint32_t window : {1u, 4u, 16u, 64u, 256u}) {
        DramSystemConfig cfg;
        cfg.timing = timing;
        cfg.reorderWindow = window;
        DramSystem sys(cfg);
        const TraceResult result = sys.runTrace(trace);
        table.row({benchutil::num(window),
                   benchutil::num(result.stats.rowHits),
                   benchutil::fmt("%.2f", result.stats.rowHitRate()),
                   benchutil::num(result.makespan),
                   benchutil::fmt("%.1f",
                                  result.stats.avgReadLatency())});
        if (result.makespan > prev_makespan + prev_makespan / 50)
            monotone = false;
        prev_makespan = result.makespan;
    }
    table.rule();
    std::printf("wider windows never hurt makespan (2%% tolerance): "
                "%s\n", monotone ? "yes" : "NO");

    // Streak-cap sanity: an uncapped scheduler can starve other rows;
    // with the cap, every stream advances.
    DramSystemConfig capped;
    capped.timing = timing;
    capped.reorderWindow = 256;
    capped.hitStreakCap = 4;
    DramSystem sys(capped);
    const TraceResult result = sys.runTrace(trace);
    std::printf("hitStreakCap=4: hit rate %.2f (fairness at a small "
                "throughput cost)\n", result.stats.rowHitRate());
    return 0;
}
