#include "sparse/pattern.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace scalesim::sparse
{

SparsityPattern::SparsityPattern(std::uint64_t dense_k, std::uint32_t m)
    : denseK_(dense_k), m_(m)
{
    if (dense_k == 0)
        fatal("sparsity pattern needs a non-zero K");
}

void
SparsityPattern::finalize()
{
    origIndex_.clear();
    if (m_ == 0) {
        origIndex_.resize(denseK_);
        for (std::uint64_t k = 0; k < denseK_; ++k)
            origIndex_[k] = k;
        return;
    }
    for (std::size_t b = 0; b < nnzPerBlock_.size(); ++b) {
        const std::uint64_t base = static_cast<std::uint64_t>(b) * m_;
        const std::uint64_t block_rows = std::min<std::uint64_t>(
            m_, denseK_ - base);
        const std::uint64_t kept = std::min<std::uint64_t>(
            nnzPerBlock_[b], block_rows);
        // Paper §IV-B: the first N rows of a block are the nonzero
        // ones.
        for (std::uint64_t j = 0; j < kept; ++j)
            origIndex_.push_back(base + j);
    }
    if (origIndex_.empty())
        fatal("sparsity pattern compressed K to zero");
}

SparsityPattern
SparsityPattern::layerWise(std::uint64_t dense_k, std::uint32_t n,
                           std::uint32_t m)
{
    if (m == 0 || n == 0 || n > m)
        fatal("invalid N:M ratio %u:%u", n, m);
    SparsityPattern pattern(dense_k, m);
    const std::uint64_t blocks = ceilDiv(dense_k, m);
    pattern.nnzPerBlock_.assign(blocks, n);
    pattern.finalize();
    return pattern;
}

SparsityPattern
SparsityPattern::rowWise(std::uint64_t dense_k, std::uint32_t m,
                         Rng& rng)
{
    if (m < 2)
        fatal("row-wise sparsity needs block size >= 2 (got %u)", m);
    SparsityPattern pattern(dense_k, m);
    const std::uint64_t blocks = ceilDiv(dense_k, m);
    pattern.nnzPerBlock_.resize(blocks);
    const std::uint32_t max_n = std::max<std::uint32_t>(1, m / 2);
    for (auto& nnz : pattern.nnzPerBlock_)
        nnz = static_cast<std::uint32_t>(rng.range(1, max_n));
    pattern.finalize();
    return pattern;
}

SparsityPattern
SparsityPattern::dense(std::uint64_t dense_k)
{
    SparsityPattern pattern(dense_k, 0);
    pattern.finalize();
    return pattern;
}

std::uint64_t
SparsityPattern::origK(std::uint64_t comp_k) const
{
    if (comp_k >= origIndex_.size())
        panic("origK(%llu) out of range (compressed K = %zu)",
              static_cast<unsigned long long>(comp_k),
              origIndex_.size());
    return origIndex_[comp_k];
}

double
SparsityPattern::density() const
{
    if (denseK_ == 0)
        return 0.0;
    return static_cast<double>(compressedK())
        / static_cast<double>(denseK_);
}

} // namespace scalesim::sparse
