/**
 * @file
 * Lint fixture for [naked-mutex]. Never compiled — scanned by
 * tests/lint_test.cpp: one firing member (a std::mutex nothing is
 * annotated against), one annotated CheckedMutex that must NOT fire,
 * and one suppressed mutex.
 */

#include <mutex>

#include "check/thread_safety.hpp"

struct FixtureNaked
{
    std::mutex lock_; // finding: no SIM_GUARDED_BY user in this file
};

struct FixtureAnnotated
{
    scalesim::CheckedMutex mutex_;
    int value_ SIM_GUARDED_BY(mutex_) = 0; // mutex_ has a user: clean
};

struct FixtureAllowed
{
    // scalesim-lint: allow(naked-mutex)
    std::mutex external_; // suppressed: locked by the embedding layer
};
