file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_l2.dir/ablation_shared_l2.cpp.o"
  "CMakeFiles/ablation_shared_l2.dir/ablation_shared_l2.cpp.o.d"
  "ablation_shared_l2"
  "ablation_shared_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
