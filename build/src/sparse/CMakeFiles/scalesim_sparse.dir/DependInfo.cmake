
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/formats.cpp" "src/sparse/CMakeFiles/scalesim_sparse.dir/formats.cpp.o" "gcc" "src/sparse/CMakeFiles/scalesim_sparse.dir/formats.cpp.o.d"
  "/root/repo/src/sparse/model.cpp" "src/sparse/CMakeFiles/scalesim_sparse.dir/model.cpp.o" "gcc" "src/sparse/CMakeFiles/scalesim_sparse.dir/model.cpp.o.d"
  "/root/repo/src/sparse/pattern.cpp" "src/sparse/CMakeFiles/scalesim_sparse.dir/pattern.cpp.o" "gcc" "src/sparse/CMakeFiles/scalesim_sparse.dir/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scalesim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/scalesim_systolic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
