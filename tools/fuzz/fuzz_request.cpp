/**
 * @file
 * libFuzzer harness for the sweep server's request parser: feeds
 * arbitrary bytes through Server::handleRequest on a dry-run server
 * (requests are parsed and validated end to end — JSON, config
 * overlay, topology, sweep axes — but nothing simulates). The
 * contract under fuzz is total: handleRequest never throws and always
 * returns one well-formed response line; any crash, hang, or ASan
 * finding is a bug.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/log.hpp"
#include "serve/server.hpp"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    scalesim::setQuiet(true);
    static scalesim::serve::Server server([] {
        scalesim::serve::Server::Options options;
        options.dryRun = true;
        return options;
    }());
    const std::string line(reinterpret_cast<const char*>(data), size);
    const std::string response = server.handleRequest(line);
    (void)response;
    return 0;
}
