/**
 * @file
 * Minimal recursive-descent JSON validator/parser shared by the
 * observability tests: checks that a document is well-formed JSON and
 * exposes a tiny DOM for spot-checking values. Not a general-purpose
 * parser — just enough to validate the simulator's own outputs without
 * external dependencies.
 */

#ifndef SCALESIM_TESTS_JSON_CHECK_HH
#define SCALESIM_TESTS_JSON_CHECK_HH

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jsoncheck
{

struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<Value> items;
    std::map<std::string, Value> members;

    const Value*
    find(const std::string& key) const
    {
        const auto it = members.find(key);
        return it == members.end() ? nullptr : &it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    /** Parse the whole document; false on any syntax error. */
    bool
    parse(Value& out)
    {
        pos_ = 0;
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    bool
    parseString(std::string& out)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                      for (int i = 0; i < 4; ++i) {
                          if (pos_ >= text_.size()
                              || !std::isxdigit(static_cast<unsigned char>(
                                     text_[pos_])))
                              return false;
                          ++pos_;
                      }
                      out += '?'; // placeholder; tests don't need it
                      break;
                  }
                  default: return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // raw control characters are invalid
            } else {
                out += c;
            }
        }
        return false;
    }

    bool
    parseNumber(Value& out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size()
            || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            return false;
        while (pos_ < text_.size()
               && std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size()
                || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return false;
            while (pos_ < text_.size()
                   && std::isdigit(static_cast<unsigned char>(
                          text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size()
            && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size()
                || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                return false;
            while (pos_ < text_.size()
                   && std::isdigit(static_cast<unsigned char>(
                          text_[pos_])))
                ++pos_;
        }
        out.kind = Value::Kind::Number;
        out.number = std::stod(text_.substr(start, pos_ - start));
        return true;
    }

    bool
    parseValue(Value& out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = Value::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parseString(key) || !consume(':'))
                    return false;
                Value member;
                if (!parseValue(member))
                    return false;
                out.members[key] = std::move(member);
                if (consume('}'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = Value::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                Value item;
                if (!parseValue(item))
                    return false;
                out.items.push_back(std::move(item));
                if (consume(']'))
                    return true;
                if (!consume(','))
                    return false;
            }
        }
        if (c == '"') {
            out.kind = Value::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = Value::Kind::Null;
            return literal("null");
        }
        return parseNumber(out);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

/** Convenience: parse text, returning success. */
inline bool
valid(const std::string& text, Value& out)
{
    return Parser(text).parse(out);
}

} // namespace jsoncheck

#endif // SCALESIM_TESTS_JSON_CHECK_HH
