#include "systolic/mapping.hpp"

#include "common/log.hpp"

namespace scalesim::systolic
{

OperandMap
OperandMap::forLayer(const LayerSpec& layer, const MemoryConfig& mem)
{
    OperandMap map(layer.toGemm(), mem);
    if (layer.type == LayerType::Conv) {
        map.conv = true;
        map.ifmapH = layer.ifmapH;
        map.ifmapW = layer.ifmapW;
        map.channels = layer.channels;
        map.filterH = layer.filterH;
        map.filterW = layer.filterW;
        map.stride = layer.stride;
        map.ofmapW = layer.ofmapW();
        map.batch = layer.batch == 0 ? 1 : layer.batch;
    }
    return map;
}

MappedDims
mapGemmConventional(const GemmDims& gemm, Dataflow df)
{
    switch (df) {
      case Dataflow::WeightStationary:
        return {gemm.k, gemm.n, gemm.m};
      case Dataflow::InputStationary:
        return {gemm.k, gemm.m, gemm.n};
      case Dataflow::OutputStationary:
        return {gemm.m, gemm.n, gemm.k};
    }
    return {gemm.m, gemm.n, gemm.k};
}

FoldGrid::FoldGrid(const GemmDims& gemm, Dataflow df, std::uint32_t rows,
                   std::uint32_t cols)
    : gemm_(gemm), df_(df), mapped_(mapGemmConventional(gemm, df)),
      rows_(rows), cols_(cols)
{
    if (rows_ == 0 || cols_ == 0)
        fatal("systolic array dimensions must be non-zero");
    if (gemm_.m == 0 || gemm_.n == 0 || gemm_.k == 0)
        fatal("GEMM dimensions must be non-zero");
    rowFolds_ = ceilDiv(mapped_.sr, rows_);
    colFolds_ = ceilDiv(mapped_.sc, cols_);
}

std::uint64_t
FoldGrid::tileRows(std::uint64_t rf) const
{
    const std::uint64_t base = rf * rows_;
    return std::min<std::uint64_t>(rows_, mapped_.sr - base);
}

std::uint64_t
FoldGrid::tileCols(std::uint64_t cf) const
{
    const std::uint64_t base = cf * cols_;
    return std::min<std::uint64_t>(cols_, mapped_.sc - base);
}

double
FoldGrid::utilization() const
{
    const double pe_cycles = static_cast<double>(totalCycles())
        * rows_ * cols_;
    if (pe_cycles <= 0.0)
        return 0.0;
    return static_cast<double>(gemm_.macs()) / pe_cycles;
}

double
FoldGrid::mappingEfficiency() const
{
    const double mapped_area = static_cast<double>(mapped_.sr)
        * static_cast<double>(mapped_.sc);
    const double fold_area = static_cast<double>(rowFolds_) * rows_
        * static_cast<double>(colFolds_) * cols_;
    if (fold_area <= 0.0)
        return 0.0;
    return mapped_area / fold_area;
}

FoldTraffic
FoldGrid::foldTraffic(std::uint64_t rf, std::uint64_t cf) const
{
    const std::uint64_t tr = tileRows(rf);
    const std::uint64_t tc = tileCols(cf);
    FoldTraffic traffic;
    switch (df_) {
      case Dataflow::OutputStationary:
        // Sr = M rows of A, Sc = N cols of B, T = K streamed.
        traffic.ifmapWords = tr * gemm_.k;
        traffic.filterWords = gemm_.k * tc;
        traffic.ofmapWriteWords = tr * tc;
        break;
      case Dataflow::WeightStationary:
        // Stationary filter tile [K-range x N-range]; ifmap streams all
        // M rows over the tile's K range; outputs are M x N-range.
        traffic.filterWords = tr * tc;
        traffic.ifmapWords = gemm_.m * tr;
        traffic.ofmapWriteWords = gemm_.m * tc;
        traffic.ofmapReadWords = rf > 0 ? gemm_.m * tc : 0;
        break;
      case Dataflow::InputStationary:
        // Stationary ifmap tile [K-range x M-range]; filter streams all
        // N cols over the tile's K range; outputs are M-range x N.
        traffic.ifmapWords = tr * tc;
        traffic.filterWords = gemm_.n * tr;
        traffic.ofmapWriteWords = gemm_.n * tc;
        traffic.ofmapReadWords = rf > 0 ? gemm_.n * tc : 0;
        break;
    }
    return traffic;
}

FoldGrid::SramAccessCounts
FoldGrid::sramAccessCounts() const
{
    SramAccessCounts counts;
    const std::uint64_t sr = mapped_.sr;
    const std::uint64_t sc = mapped_.sc;
    const std::uint64_t t = mapped_.t;
    switch (df_) {
      case Dataflow::OutputStationary:
        counts.ifmapReads = sr * t * colFolds_;
        counts.filterReads = sc * t * rowFolds_;
        counts.ofmapWrites = sr * sc;
        break;
      case Dataflow::WeightStationary:
        counts.filterReads = sr * sc;            // stationary loads
        counts.ifmapReads = sr * t * colFolds_;  // streamed operand
        counts.ofmapWrites = sc * t * rowFolds_;
        counts.ofmapReads = sc * t * (rowFolds_ - 1);
        break;
      case Dataflow::InputStationary:
        counts.ifmapReads = sr * sc;             // stationary loads
        counts.filterReads = sr * t * colFolds_; // streamed operand
        counts.ofmapWrites = sc * t * rowFolds_;
        counts.ofmapReads = sc * t * (rowFolds_ - 1);
        break;
    }
    return counts;
}

} // namespace scalesim::systolic
