/**
 * @file
 * Tests for the observability substrate: the stats registry (scalar /
 * vector / distribution / formula semantics, percentiles, merging,
 * deterministic dumps and flattening), the streaming JSON writer, the
 * Chrome-trace builder, CPI-stack cycle conservation, interval
 * time-series sampling/serialization, and the determinism contract of
 * detailed DSE sweeps (parallel stats dumps and interval series
 * byte-identical to sequential ones).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/workloads.hpp"
#include "core/dse.hpp"
#include "obs/cpi.hpp"
#include "obs/interval.hpp"
#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"

#include "json_check.hpp"

using namespace scalesim;

TEST(Histogram, BucketsByPowerOfTwo)
{
    obs::Histogram h;
    h.sample(0.0);
    h.sample(1.0);
    h.sample(2.0);
    h.sample(3.0);
    h.sample(1000.0);
    EXPECT_EQ(h.count, 5u);
    EXPECT_EQ(h.buckets[0], 1u); // zero
    EXPECT_EQ(h.buckets[1], 1u); // [1, 2)
    EXPECT_EQ(h.buckets[2], 2u); // [2, 4)
    EXPECT_DOUBLE_EQ(h.minSample, 0.0);
    EXPECT_DOUBLE_EQ(h.maxSample, 1000.0);
    EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 5.0);
}

TEST(Histogram, MergeAddsCountsAndMoments)
{
    obs::Histogram a, b;
    a.sample(1.0);
    a.sample(2.0);
    b.sample(8.0);
    a.merge(b);
    EXPECT_EQ(a.count, 3u);
    EXPECT_DOUBLE_EQ(a.sum, 11.0);
    EXPECT_DOUBLE_EQ(a.maxSample, 8.0);
    EXPECT_DOUBLE_EQ(a.minSample, 1.0);
}

TEST(Histogram, EmptyHasNoNan)
{
    obs::Histogram h;
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.stdev(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, BucketZeroCoversSubUnitSamples)
{
    // Bucket 0 is [0, 1): every fractional latency lands there, and
    // 1.0 starts bucket 1.
    obs::Histogram h;
    h.sample(0.0);
    h.sample(0.25);
    h.sample(0.99);
    EXPECT_EQ(h.buckets[0], 3u);
    h.sample(1.0);
    EXPECT_EQ(h.buckets[1], 1u);
}

TEST(Histogram, QuantilesInterpolateWithinBuckets)
{
    obs::Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    // q <= 0 / q >= 1 clamp to the observed envelope.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
    // Bucket 6 spans [32, 64) with 32 samples and cumulative 32
    // below it; target 50 interpolates to exactly 50.0.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
    // Higher quantiles stay ordered and inside the envelope.
    const double p90 = h.quantile(0.9);
    const double p99 = h.quantile(0.99);
    EXPECT_GE(p90, h.quantile(0.5));
    EXPECT_GE(p99, p90);
    EXPECT_LE(p99, h.maxSample);
}

TEST(Histogram, DumpEmitsPercentileLines)
{
    obs::StatsRegistry reg;
    obs::Histogram h;
    for (int i = 1; i <= 16; ++i)
        h.sample(static_cast<double>(i));
    reg.addDistribution("dram.readLatency", "latency", h);

    std::ostringstream out;
    reg.dump(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("dram.readLatency::p50"), std::string::npos);
    EXPECT_NE(text.find("dram.readLatency::p90"), std::string::npos);
    EXPECT_NE(text.find("dram.readLatency::p99"), std::string::npos);

    std::ostringstream json_out;
    reg.dumpJson(json_out);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(json_out.str(), doc));
    const jsoncheck::Value* dist = doc.find("dram.readLatency");
    ASSERT_NE(dist, nullptr);
    ASSERT_NE(dist->find("p50"), nullptr);
    EXPECT_DOUBLE_EQ(dist->find("p50")->number, h.quantile(0.5));
}

TEST(StatsRegistry, ScalarsAccumulate)
{
    obs::StatsRegistry reg;
    reg.addScalar("a.x", "x", 2.0);
    reg.addScalar("a.x", "x", 3.0);
    EXPECT_DOUBLE_EQ(reg.scalarValue("a.x"), 5.0);
    EXPECT_DOUBLE_EQ(reg.scalarValue("absent"), 0.0);
}

TEST(StatsRegistry, VectorElementsAccumulateAndTotal)
{
    obs::StatsRegistry reg;
    reg.addVectorElem("v", "e0", "v", 1.0);
    reg.addVectorElem("v", "e1", "v", 2.0);
    reg.addVectorElem("v", "e0", "v", 10.0);
    EXPECT_DOUBLE_EQ(reg.evaluate("v"), 13.0); // vector total
}

TEST(StatsRegistry, FormulaEvaluatesAgainstRegistry)
{
    obs::StatsRegistry reg;
    reg.addScalar("hits", "h", 30.0);
    reg.addScalar("misses", "m", 10.0);
    obs::FormulaSpec rate;
    rate.numerator = {{"hits", 1.0}};
    rate.denominator = {{"hits", 1.0}, {"misses", 1.0}};
    reg.addFormula("hitRate", "hits / accesses", rate);
    EXPECT_DOUBLE_EQ(reg.evaluate("hitRate"), 0.75);
}

TEST(StatsRegistry, FormulaZeroDenominatorIsZeroNotNan)
{
    obs::StatsRegistry reg;
    reg.addScalar("num", "n", 5.0);
    obs::FormulaSpec f;
    f.numerator = {{"num", 1.0}};
    f.denominator = {{"absent", 1.0}};
    reg.addFormula("ratio", "r", f);
    const double v = reg.evaluate("ratio");
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(StatsRegistry, MergeAddsAndDumpIsDeterministic)
{
    obs::StatsRegistry a, b;
    a.addScalar("s", "s", 1.0);
    a.addVectorElem("v", "e", "v", 2.0);
    obs::Histogram h;
    h.sample(4.0);
    a.addDistribution("d", "d", h);

    b.addScalar("s", "s", 9.0);
    b.addVectorElem("v", "e", "v", 3.0);
    b.addDistribution("d", "d", h);

    obs::StatsRegistry ab = a;
    ab.merge(b);
    obs::StatsRegistry ba = b;
    ba.merge(a);
    EXPECT_DOUBLE_EQ(ab.scalarValue("s"), 10.0);

    std::ostringstream out_ab, out_ba;
    ab.dump(out_ab);
    ba.dump(out_ba);
    EXPECT_EQ(out_ab.str(), out_ba.str());
    EXPECT_NE(out_ab.str().find("Begin Simulation Statistics"),
              std::string::npos);
}

TEST(StatsRegistry, DumpJsonParses)
{
    obs::StatsRegistry reg;
    reg.addScalar("sim.cycles", "cycles", 42.0);
    reg.addVectorElem("spad.stallBreakdown", "drain", "stalls", 7.0);
    obs::Histogram h;
    h.sample(3.0);
    reg.addDistribution("dram.queueOccupancy", "occupancy", h);
    obs::FormulaSpec f;
    f.numerator = {{"sim.cycles", 1.0}};
    reg.addFormula("sim.rate", "rate", f);

    std::ostringstream out;
    reg.dumpJson(out);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(out.str(), doc));
    ASSERT_EQ(doc.kind, jsoncheck::Value::Kind::Object);
    const jsoncheck::Value* cycles = doc.find("sim.cycles");
    ASSERT_NE(cycles, nullptr);
    const jsoncheck::Value* value = cycles->find("value");
    ASSERT_NE(value, nullptr);
    EXPECT_DOUBLE_EQ(value->number, 42.0);
}

TEST(JsonWriter, ProducesValidNestedDocument)
{
    std::ostringstream out;
    obs::JsonWriter json(out);
    json.beginObject();
    json.field("name", "run \"x\" \n tab\t");
    json.field("count", static_cast<std::uint64_t>(7));
    json.key("list").beginArray();
    json.value(1.5);
    json.value(true);
    json.null();
    json.endArray();
    json.key("nested").beginObject();
    json.field("deep", -3);
    json.endObject();
    json.endObject();

    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(out.str(), doc));
    EXPECT_EQ(doc.find("count")->number, 7.0);
    EXPECT_EQ(doc.find("list")->items.size(), 3u);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream out;
    obs::JsonWriter json(out);
    json.beginObject();
    json.field("a", std::numeric_limits<double>::quiet_NaN());
    json.field("b", std::numeric_limits<double>::infinity());
    json.endObject();
    const std::string text = out.str();
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(text, doc));
    EXPECT_EQ(doc.find("a")->kind, jsoncheck::Value::Kind::Null);
    EXPECT_EQ(doc.find("b")->kind, jsoncheck::Value::Kind::Null);
}

TEST(TraceBuilder, EmitsValidChromeTraceJson)
{
    obs::TraceBuilder trace;
    trace.setProcessName(0, "accelerator");
    trace.setThreadName(0, 0, "layers");
    trace.addSpan(0, 0, "conv1", "layer", 0, 100,
                  {{"utilization", 0.5}});
    trace.addCounter(0, "power_W", 0, "power", 1.25);
    trace.addMetadata("workload", "tiny");

    std::ostringstream out;
    trace.write(out);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(out.str(), doc));
    const jsoncheck::Value* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, jsoncheck::Value::Kind::Array);
    // 2 metadata + 1 span + 1 counter.
    EXPECT_EQ(events->items.size(), 4u);
    bool saw_span = false, saw_counter = false;
    for (const auto& ev : events->items) {
        const jsoncheck::Value* ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        saw_span = saw_span || ph->text == "X";
        saw_counter = saw_counter || ph->text == "C";
    }
    EXPECT_TRUE(saw_span);
    EXPECT_TRUE(saw_counter);
}

TEST(StatsRegistry, FlattenIsSortedAndSkipsFormulas)
{
    obs::StatsRegistry reg;
    reg.addScalar("z.cycles", "c", 5.0);
    reg.addVectorElem("a.vec", "e1", "v", 2.0);
    reg.addVectorElem("a.vec", "e0", "v", 1.0);
    obs::Histogram h;
    h.sample(3.0);
    reg.addDistribution("m.dist", "d", h);
    obs::FormulaSpec f;
    f.numerator = {{"z.cycles", 1.0}};
    reg.addFormula("z.rate", "r", f);

    const auto flat = reg.flatten();
    ASSERT_TRUE(std::is_sorted(flat.begin(), flat.end()));
    auto value_of = [&](const std::string& name) -> double {
        for (const auto& [n, v] : flat)
            if (n == name)
                return v;
        ADD_FAILURE() << "missing flattened stat " << name;
        return std::nan("");
    };
    EXPECT_DOUBLE_EQ(value_of("z.cycles"), 5.0);
    EXPECT_DOUBLE_EQ(value_of("a.vec::e0"), 1.0);
    EXPECT_DOUBLE_EQ(value_of("a.vec::e1"), 2.0);
    EXPECT_DOUBLE_EQ(value_of("m.dist::samples"), 1.0);
    EXPECT_DOUBLE_EQ(value_of("m.dist::sum"), 3.0);
    for (const auto& [n, v] : flat)
        EXPECT_NE(n, "z.rate") << "formulas must not be flattened";
}

TEST(CpiStack, AccumulateAndNamesAreStable)
{
    obs::CpiStack a;
    a.compute = 10;
    a.drain = 2;
    obs::CpiStack b;
    b.compute = 3;
    b.dramQueue = 5;
    a.accumulate(b, 2);
    EXPECT_EQ(a.compute, 16u);
    EXPECT_EQ(a.dramQueue, 10u);
    EXPECT_EQ(a.total(), 28u);

    // Bucket order is part of the stats schema; pin it.
    EXPECT_STREQ(obs::CpiStack::bucketName(0), "compute");
    EXPECT_STREQ(obs::CpiStack::bucketName(1), "vector");
    EXPECT_STREQ(
        obs::CpiStack::bucketName(obs::CpiStack::kBucketCount - 1),
        "refresh");
    std::uint64_t by_bucket = 0;
    for (unsigned i = 0; i < obs::CpiStack::kBucketCount; ++i)
        by_bucket += a.bucketValue(i);
    EXPECT_EQ(by_bucket, a.total());
}

namespace
{

obs::StatsRegistry
cumulativeAt(double a, double b)
{
    obs::StatsRegistry reg;
    reg.addScalar("sim.a", "a", a);
    reg.addScalar("sim.b", "b", b);
    return reg;
}

double
deltaOf(const obs::IntervalRow& row, std::string_view name)
{
    for (const auto& [n, v] : row.deltas)
        if (n == name)
            return v;
    ADD_FAILURE() << "missing delta " << name;
    return std::nan("");
}

} // namespace

TEST(IntervalSampler, EmitsRowsAtBoundariesAndFinishTail)
{
    obs::IntervalSampler off(0);
    EXPECT_FALSE(off.enabled());

    obs::IntervalSampler s(100);
    ASSERT_TRUE(s.enabled());
    s.sample(50, cumulativeAt(10, 1)); // before the first boundary
    s.sample(150, cumulativeAt(30, 2)); // crosses cycle 100
    s.sample(160, cumulativeAt(40, 3)); // next boundary is 200
    s.finish(180, cumulativeAt(45, 4)); // partial tail row

    const obs::IntervalSeries series = s.takeSeries();
    EXPECT_EQ(series.interval, 100u);
    ASSERT_EQ(series.rows.size(), 2u);
    // First row's deltas are the cumulative values so far.
    EXPECT_EQ(series.rows[0].cycle, 150u);
    EXPECT_DOUBLE_EQ(deltaOf(series.rows[0], "sim.a"), 30.0);
    EXPECT_DOUBLE_EQ(deltaOf(series.rows[0], "sim.b"), 2.0);
    // The tail row carries only what accrued past the last row.
    EXPECT_EQ(series.rows[1].cycle, 180u);
    EXPECT_DOUBLE_EQ(deltaOf(series.rows[1], "sim.a"), 15.0);
    EXPECT_DOUBLE_EQ(deltaOf(series.rows[1], "sim.b"), 2.0);
}

TEST(IntervalSampler, FinishWithoutNewCyclesAddsNoRow)
{
    obs::IntervalSampler s(10);
    s.sample(10, cumulativeAt(5, 0));
    s.finish(10, cumulativeAt(5, 0));
    EXPECT_EQ(s.series().rows.size(), 1u);
}

TEST(IntervalSeries, SerializationsAreValidAndConsistent)
{
    obs::IntervalSampler s(100);
    s.sample(150, cumulativeAt(30, 2));
    s.finish(180, cumulativeAt(45, 4));
    const obs::IntervalSeries series = s.takeSeries();

    std::ostringstream text;
    series.writeStatsText(text);
    EXPECT_NE(text.str().find("Begin Interval Statistics"),
              std::string::npos);
    EXPECT_NE(text.str().find("cycle 150"), std::string::npos);
    EXPECT_NE(text.str().find("cycle 180"), std::string::npos);

    std::ostringstream csv;
    series.writeCsv(csv);
    EXPECT_EQ(csv.str().rfind("cycle,sim.a,sim.b\n", 0), 0u)
        << csv.str();

    std::ostringstream json_out;
    series.writeJson(json_out);
    jsoncheck::Value doc;
    ASSERT_TRUE(jsoncheck::valid(json_out.str(), doc));
    EXPECT_DOUBLE_EQ(doc.find("interval")->number, 100.0);
    const jsoncheck::Value* rows = doc.find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->items.size(), 2u);
    const jsoncheck::Value* stats = rows->items[0].find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_DOUBLE_EQ(stats->find("sim.a")->number, 30.0);

    // Counter tracks: one Perfetto counter sample per row for the
    // prefix-selected stats.
    obs::TraceBuilder trace;
    series.toCounterTracks(trace, 0, "sim.a", "a");
    std::ostringstream trace_out;
    trace.write(trace_out);
    jsoncheck::Value trace_doc;
    ASSERT_TRUE(jsoncheck::valid(trace_out.str(), trace_doc));
}

namespace
{

Topology
tinyTopology()
{
    Topology topo;
    topo.name = "tiny";
    topo.layers.push_back(LayerSpec::conv("conv", 14, 14, 3, 3, 8, 16,
                                          1));
    topo.layers.push_back(LayerSpec::gemm("fc", 4, 32, 64));
    return topo;
}

core::DseSweep
smallSweep(unsigned jobs)
{
    core::DseSweep sweep;
    sweep.arraySizes = {8, 16};
    sweep.dataflows = {Dataflow::OutputStationary,
                       Dataflow::WeightStationary};
    sweep.sramKbTotals = {256};
    sweep.base.mode = SimMode::Analytical;
    sweep.jobs = jobs;
    return sweep;
}

} // namespace

TEST(Simulator, CpiStackConservesCyclesWithDramAndIntervals)
{
    SimConfig cfg;
    cfg.dram.enabled = true;
    cfg.audit = true;
    cfg.intervalCycles = 2000;
    core::Simulator sim(cfg);
    const core::RunResult run = sim.run(tinyTopology());

    // The auditor saw every per-layer and run-level CPI stack.
    EXPECT_TRUE(run.audited);
    EXPECT_TRUE(run.audit.clean());

    // One cycle, one bucket: stacks partition wall-clock time exactly.
    EXPECT_EQ(run.cpiTotals.total(), run.totalCycles);
    for (const auto& layer : run.layers)
        EXPECT_EQ(layer.cpi.total(), layer.totalCycles) << layer.name;

    // With DRAM on, some stall bucket beyond compute/vector is live.
    EXPECT_LT(run.cpiTotals.compute + run.cpiTotals.vectorUnit,
              run.totalCycles);

    // Interval rows exist and their cpistack deltas telescope back to
    // the run total (sampling must not lose or duplicate cycles).
    ASSERT_FALSE(run.intervals.empty());
    double series_cycles = 0.0;
    for (const auto& row : run.intervals.rows)
        for (unsigned i = 0; i < obs::CpiStack::kBucketCount; ++i)
            series_cycles += deltaOf(
                row, std::string("sim.cpistack::")
                         + obs::CpiStack::bucketName(i));
    EXPECT_DOUBLE_EQ(series_cycles,
                     static_cast<double>(run.totalCycles));
}

TEST(DseDetailed, ParallelStatsDumpsMatchSequential)
{
    const Topology topo = tinyTopology();
    const auto seq = core::runSweepDetailed(smallSweep(1), topo);
    const auto par = core::runSweepDetailed(smallSweep(4), topo);
    ASSERT_EQ(seq.size(), par.size());

    // Per-point dumps are byte-identical regardless of jobs.
    for (std::size_t i = 0; i < seq.size(); ++i) {
        std::ostringstream s, p;
        seq[i].stats.dump(s);
        par[i].stats.dump(p);
        EXPECT_EQ(s.str(), p.str()) << "point " << i;
        EXPECT_FALSE(seq[i].stats.empty());
    }

    // And so is the index-order merged aggregate.
    std::ostringstream s, p;
    core::mergeSweepStats(seq).dump(s);
    core::mergeSweepStats(par).dump(p);
    EXPECT_EQ(s.str(), p.str());
}

TEST(DseDetailed, ParallelIntervalSeriesMatchSequential)
{
    const Topology topo = tinyTopology();
    auto sweep_with_intervals = [](unsigned jobs) {
        core::DseSweep sweep = smallSweep(jobs);
        sweep.base.intervalCycles = 64;
        return sweep;
    };
    const auto seq =
        core::runSweepDetailed(sweep_with_intervals(1), topo);
    const auto par =
        core::runSweepDetailed(sweep_with_intervals(4), topo);
    ASSERT_EQ(seq.size(), par.size());

    // Every serialization of every point's time-series must be
    // byte-identical regardless of the jobs count.
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_FALSE(seq[i].intervals.empty()) << "point " << i;
        using Writer =
            void (obs::IntervalSeries::*)(std::ostream&) const;
        for (Writer writer : {&obs::IntervalSeries::writeStatsText,
                              &obs::IntervalSeries::writeCsv,
                              &obs::IntervalSeries::writeJson}) {
            std::ostringstream s, p;
            (seq[i].intervals.*writer)(s);
            (par[i].intervals.*writer)(p);
            EXPECT_EQ(s.str(), p.str()) << "point " << i;
        }
    }
}

TEST(DseDetailed, RunSweepMatchesDetailedPoints)
{
    const Topology topo = tinyTopology();
    const auto points = core::runSweep(smallSweep(1), topo);
    const auto detailed = core::runSweepDetailed(smallSweep(1), topo);
    ASSERT_EQ(points.size(), detailed.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].cycles, detailed[i].point.cycles);
        EXPECT_DOUBLE_EQ(points[i].energyMj,
                         detailed[i].point.energyMj);
    }
}
