/**
 * @file
 * Simulator-wide invariant auditor: a registry of named cross-module
 * conservation laws that tie the counters the observability layer
 * reports back to what the engines actually did, audited after every
 * layer and at end of run. Unlike the SIM_CHECK contract macros
 * (contract.hpp), the auditor is runtime-gated (`--audit` /
 * SimConfig::audit), never aborts, and collects every violation into a
 * report that flows out through the stats registry (`sim.audit.*`) and
 * the JSON reporters.
 *
 * The laws (names are stable identifiers used in stats, tests, and
 * DESIGN.md):
 *
 *   spad.stallAccounting     prefetchMiss + drain + bandwidth stall
 *                            buckets sum exactly to stallCycles, and
 *                            totalCycles == computeCycles + stallCycles
 *   runtime.envelope         trace-mode compute cycles reproduce the
 *                            analytical (2R + C + T - 2) *
 *                            ceil(Sr/R) * ceil(Sc/C) runtime (Eq. 1),
 *                            scaled by the layout slowdown
 *   foldCache.conservation   replayed + live folds == total folds, and
 *                            replayed addresses exist iff folds were
 *                            replayed
 *   foldCache.replayFidelity replaying a layer's demand stream with
 *                            the fold cache produces a byte-identical
 *                            stream to live generation (checksum
 *                            spot-check on bounded-size layers)
 *   dram.bankConservation    per-bank rowHits + rowMisses + conflicts
 *                            sum to the channel's requests; channel
 *                            stats sum to the system totals; bytes
 *                            equal requests x burstBytes
 *   dram.refreshBound        per-rank all-bank refresh counts stay
 *                            within the tREFI cadence implied by the
 *                            channel's active window
 *   energy.actionAccounting  MAC action classes partition PE-cycles;
 *                            SRAM access + idle port-cycles partition
 *                            port capacity; NoC words equal SRAM words
 *   energy.demandAgreement   trace-counted SRAM accesses equal the
 *                            closed-form array-edge access counts
 *   mem.trafficConservation  scratchpad-issued DRAM words/requests
 *                            equal the main-memory model's counters
 *   mc.arbConservation       multi-core arbiter grants equal the sum
 *                            of per-port admitted transactions; L1
 *                            fill words equal L2 hit + miss words
 *   run.totalsAccounting     run totals equal the repetition-weighted
 *                            sum of per-layer results
 *   cpi.conservation         CPI-stack buckets partition wall-clock
 *                            time: the per-cause cycle buckets sum
 *                            exactly to totalCycles for every layer,
 *                            every core, and the whole run; the
 *                            multi-core port-level read-latency split
 *                            (portWait + queue + refresh + service)
 *                            covers totalReadLatency per port
 */

#ifndef SCALESIM_CHECK_AUDIT_HH
#define SCALESIM_CHECK_AUDIT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "dram/system.hpp"
#include "energy/action_counts.hpp"
#include "multicore/trace_sim.hpp"
#include "obs/cpi.hpp"
#include "obs/stats.hpp"
#include "systolic/demand.hpp"
#include "systolic/scratchpad.hpp"

namespace scalesim::check
{

/** One broken conservation law. */
struct Violation
{
    std::string law;     ///< stable law name (see file comment)
    std::string scope;   ///< layer name, channel, or "run"
    std::string message; ///< the failed relation with both sides
};

/** Identity of one registered law. */
struct LawInfo
{
    std::string name;
    std::string description;
};

/** Accumulated outcome of an audited run. */
class AuditReport
{
  public:
    /** Count one evaluated relation of `law`. */
    void recordCheck(std::string_view law);

    /** Record a broken relation (also counts as a check). */
    void recordViolation(std::string_view law, std::string_view scope,
                         std::string message);

    std::uint64_t checks() const { return checks_; }
    std::uint64_t checksForLaw(std::string_view law) const;
    const std::vector<Violation>& violations() const
    {
        return violations_;
    }
    bool clean() const { return violations_.empty(); }

    void clear();

    /** Fold another report into this one. */
    void merge(const AuditReport& other);

    /**
     * Register `<prefix>.checks`, `<prefix>.violations`, and the
     * per-law `<prefix>.checksByLaw` / `<prefix>.violationsByLaw`
     * vectors (every registered law gets an element, so dumps are
     * schema-stable). Default prefix: "sim.audit".
     */
    void registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix = "sim.audit") const;

    /** Human-readable violation list (empty output when clean). */
    void writeReport(std::ostream& out) const;

  private:
    std::uint64_t checks_ = 0;
    std::vector<Violation> violations_;
    /** law name -> checks run (violations counted separately). */
    std::vector<std::pair<std::string, std::uint64_t>> perLaw_;
};

/**
 * The auditor. One instance per audited Simulator (or driver); audit
 * entry points take the concrete counter structures so tests can
 * corrupt one counter and assert exactly the targeted law trips.
 */
class InvariantAuditor
{
  public:
    InvariantAuditor();

    /** All laws this auditor knows, in registration order. */
    static const std::vector<LawInfo>& laws();

    /** spad.stallAccounting over one layer's (or totals') timing. */
    void auditStallAccounting(const systolic::LayerTiming& timing,
                              std::string_view scope);

    /**
     * runtime.envelope: `timing` against the analytical runtime of
     * `grid` under `compute_scale` (the layout slowdown passed to the
     * scratchpad).
     */
    void auditRuntimeEnvelope(const systolic::LayerTiming& timing,
                              const systolic::FoldGrid& grid,
                              double compute_scale,
                              std::string_view scope);

    /** foldCache.conservation over accumulated cache counters. */
    void auditFoldCacheConservation(const systolic::FoldCacheStats& s,
                                    std::string_view scope);

    /**
     * foldCache.replayFidelity: regenerate the layer's demand stream
     * with the fold cache on and off and compare stream checksums.
     * Layers whose schedule exceeds `replayCheckMaxCycles()` are
     * skipped (spot-check, not a full re-run).
     */
    void auditFoldReplayFidelity(const GemmDims& gemm, Dataflow df,
                                 std::uint32_t array_rows,
                                 std::uint32_t array_cols,
                                 const systolic::OperandMap& operands,
                                 std::string_view scope);

    /** dram.bankConservation + dram.refreshBound over one channel. */
    void auditDramChannel(const dram::DramStats& ch,
                          const std::vector<dram::BankStats>& banks,
                          const dram::DramTiming& timing,
                          std::uint32_t ranks, std::string_view scope);

    /** Channel-sum-equals-total half of dram.bankConservation. */
    void auditDramTotals(const dram::DramStats& total,
                         const std::vector<dram::DramStats>& channels,
                         std::string_view scope);

    /** Audit a whole DRAM system (channels + totals). */
    void auditDramSystem(const dram::DramSystem& system,
                         std::string_view scope);

    /**
     * energy.actionAccounting (+ energy.demandAgreement when
     * `check_demand_agreement`): `counts` must be the per-layer counts
     * of a trace demand pass over `grid`, before stall/SIMD cycles or
     * sparse-metadata reads are folded in.
     */
    void auditEnergyActions(const energy::ActionCounts& counts,
                            const systolic::FoldGrid& grid,
                            bool check_demand_agreement,
                            std::string_view scope);

    /** mem.trafficConservation: scratchpad totals vs memory model. */
    void auditMemoryTraffic(const systolic::LayerTiming& spad_totals,
                            const systolic::MemoryStats& mem,
                            std::string_view scope);

    /** mc.arbConservation over one multi-core layer result, plus the
        per-port cpi.conservation read-latency split. */
    void auditArbiter(const multicore::MultiCoreTraceResult& result,
                      bool l2_enabled, std::string_view scope);

    /**
     * cpi.conservation: the stack's buckets must sum exactly to
     * `total_cycles` (one-cycle-one-bucket; no cycle lost or double
     * counted).
     */
    void auditCpiStack(const obs::CpiStack& cpi, Cycle total_cycles,
                       std::string_view scope);

    /**
     * run.totalsAccounting: `run_*` totals vs the repetition-weighted
     * per-layer sums (passed pre-summed by the caller).
     */
    void auditRunTotals(Cycle run_total, Cycle run_compute,
                        Cycle run_stall, std::uint64_t run_read_words,
                        std::uint64_t run_write_words, Cycle sum_total,
                        Cycle sum_compute, Cycle sum_stall,
                        std::uint64_t sum_read_words,
                        std::uint64_t sum_write_words,
                        std::string_view scope);

    const AuditReport& report() const { return report_; }
    AuditReport& report() { return report_; }

    /** Cycle cap for the replay-fidelity spot check (0 disables). */
    Cycle replayCheckMaxCycles() const { return replayCheckMax_; }
    void setReplayCheckMaxCycles(Cycle cap) { replayCheckMax_ = cap; }

  private:
    /** Evaluate one relation of `law`; record a violation if !ok. */
    void verify(bool ok, std::string_view law, std::string_view scope,
                const char* fmt, ...)
        __attribute__((format(printf, 5, 6)));

    AuditReport report_;
    Cycle replayCheckMax_ = 250'000;
};

} // namespace scalesim::check

#endif // SCALESIM_CHECK_AUDIT_HH
