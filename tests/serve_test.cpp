/**
 * @file
 * Sweep server and layer-result cache tests: cache-key discrimination
 * and invariance, byte-identical cached-vs-uncached evaluation, LRU
 * eviction, corruption-tolerant persistence, StatsRegistry binary
 * round-trips, the ndjson request protocol, and concurrent request
 * handling (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/serialize.hpp"
#include "common/workloads.hpp"
#include "core/dse.hpp"
#include "obs/json_read.hpp"
#include "obs/stats.hpp"
#include "serve/cache.hpp"
#include "serve/cached_runner.hpp"
#include "serve/server.hpp"

using namespace scalesim;
using namespace scalesim::serve;

namespace
{

Topology
smallTopology()
{
    Topology topo;
    topo.name = "serve-test";
    topo.layers.push_back(
        LayerSpec::conv("conv", 14, 14, 3, 3, 16, 32, 1));
    topo.layers.push_back(LayerSpec::gemm("fc", 4, 64, 128));
    return topo;
}

SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.arrayRows = 16;
    cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Trace;
    return cfg;
}

core::DseSweep
smallSweep()
{
    core::DseSweep sweep;
    sweep.base = baseConfig();
    sweep.base.energy.enabled = true;
    sweep.arraySizes = {16, 32};
    sweep.dataflows = {Dataflow::OutputStationary,
                       Dataflow::WeightStationary};
    sweep.sramKbTotals = {512};
    sweep.jobs = 1;
    return sweep;
}

std::string
dump(const obs::StatsRegistry& reg)
{
    std::ostringstream out;
    reg.dump(out);
    return out.str();
}

std::string
sweepFingerprint(const std::vector<core::DseDetailedPoint>& points)
{
    std::ostringstream out;
    for (const auto& d : points) {
        out << d.point.array << '|' << toString(d.point.dataflow)
            << '|' << d.point.sramKb << '|' << d.point.cycles << '|'
            << d.point.energyMj << '|' << d.point.edp << '\n';
        d.stats.dump(out);
    }
    return out.str();
}

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + name;
}

/** Parse a one-line server response; fails the test on bad JSON. */
obs::JsonValue
response(Server& server, const std::string& request)
{
    obs::JsonValue doc;
    EXPECT_TRUE(obs::parseJson(server.handleRequest(request), doc))
        << request;
    return doc;
}

} // namespace

// ---------------------------------------------------------------------
// Cache key: timing-relevant fields discriminate, cosmetic ones don't.

TEST(CacheKey, TimingRelevantConfigFieldsDiscriminate)
{
    const SimConfig cfg = baseConfig();
    const LayerSpec layer = smallTopology().layers[0];
    const std::uint64_t base_key = layerCacheKey(cfg, layer, 0);

    SimConfig prefetch = cfg;
    prefetch.memory.prefetchDepth = cfg.memory.prefetchDepth + 1;
    EXPECT_NE(layerCacheKey(prefetch, layer, 0), base_key);

    SimConfig dram = cfg;
    dram.dram.enabled = true;
    EXPECT_NE(layerCacheKey(dram, layer, 0), base_key);

    SimConfig engine = dram;
    engine.dram.engine = dram.dram.engine == "event" ? "cycle"
                                                     : "event";
    EXPECT_NE(layerCacheKey(engine, layer, 0),
              layerCacheKey(dram, layer, 0));

    SimConfig array = cfg;
    array.arrayRows = 32;
    EXPECT_NE(layerCacheKey(array, layer, 0), base_key);

    SimConfig sram = cfg;
    sram.memory.ifmapSramKb *= 2;
    EXPECT_NE(layerCacheKey(sram, layer, 0), base_key);
}

TEST(CacheKey, SparsityPatternDiscriminates)
{
    SimConfig cfg = baseConfig();
    cfg.sparsity.enabled = true;
    LayerSpec layer = smallTopology().layers[0];
    layer.sparseN = 2;
    layer.sparseM = 4;
    const std::uint64_t key24 = layerCacheKey(cfg, layer, 0);

    LayerSpec other = layer;
    other.sparseN = 1;
    EXPECT_NE(layerCacheKey(cfg, other, 0), key24);

    // Sparse patterns are seeded by layer position, so the index must
    // join the key — but only when sparsity is on.
    EXPECT_NE(layerCacheKey(cfg, layer, 1), key24);
    SimConfig dense = baseConfig();
    EXPECT_EQ(layerCacheKey(dense, smallTopology().layers[0], 0),
              layerCacheKey(dense, smallTopology().layers[0], 7));
}

TEST(CacheKey, CosmeticConfigFieldsDoNotDiscriminate)
{
    const SimConfig cfg = baseConfig();
    const LayerSpec layer = smallTopology().layers[0];
    const std::uint64_t base_key = layerCacheKey(cfg, layer, 0);

    SimConfig named = cfg;
    named.runName = "somebody-else";
    EXPECT_EQ(layerCacheKey(named, layer, 0), base_key);

    SimConfig audited = cfg;
    audited.audit = true;
    EXPECT_EQ(layerCacheKey(audited, layer, 0), base_key);

    LayerSpec renamed = layer;
    renamed.name = "another-name";
    renamed.repetitions = 9;
    EXPECT_EQ(layerCacheKey(cfg, renamed, 0), base_key);
}

// ---------------------------------------------------------------------
// Byte-identity: cached, uncached, warm, and parallel evaluation all
// produce the same bytes.

TEST(CachedRunner, CachedSweepMatchesUncachedByteForByte)
{
    const core::DseSweep sweep = smallSweep();
    const Topology topo = workloads::resnet18Prefix(6);

    LayerResultCache cache;
    const auto cached = runSweepCachedDetailed(sweep, topo, &cache);
    const auto uncached =
        runSweepCachedDetailed(sweep, topo, nullptr);

    ASSERT_EQ(cached.size(), uncached.size());
    EXPECT_EQ(sweepFingerprint(cached), sweepFingerprint(uncached));
    EXPECT_GT(cache.stats().inserts, 0u);
}

TEST(CachedRunner, WarmSweepIsAllHitsAndIdentical)
{
    const core::DseSweep sweep = smallSweep();
    const Topology topo = workloads::resnet18Prefix(6);

    LayerResultCache cache;
    const auto cold = runSweepCachedDetailed(sweep, topo, &cache);
    const auto before = cache.stats();
    const auto warm = runSweepCachedDetailed(sweep, topo, &cache);
    const auto after = cache.stats();

    EXPECT_EQ(sweepFingerprint(cold), sweepFingerprint(warm));
    EXPECT_EQ(after.misses, before.misses) << "warm sweep missed";
    EXPECT_GT(after.hits, before.hits);
}

TEST(CachedRunner, ParallelSweepSharingOneCacheIsDeterministic)
{
    core::DseSweep sweep = smallSweep();
    const Topology topo = smallTopology();

    LayerResultCache shared;
    sweep.jobs = 4;
    const auto parallel = runSweepCachedDetailed(sweep, topo, &shared);
    sweep.jobs = 1;
    LayerResultCache fresh;
    const auto sequential = runSweepCachedDetailed(sweep, topo, &fresh);

    EXPECT_EQ(sweepFingerprint(parallel),
              sweepFingerprint(sequential));
}

TEST(CachedRunner, RunMatchesCachedRunByteForByte)
{
    SimConfig cfg = baseConfig();
    cfg.dram.enabled = true;
    cfg.energy.enabled = true;
    const Topology topo = smallTopology();

    LayerResultCache cache;
    const core::RunResult cold = runTopologyCached(cfg, topo, &cache);
    const core::RunResult warm = runTopologyCached(cfg, topo, &cache);
    const core::RunResult plain =
        runTopologyCached(cfg, topo, nullptr);

    EXPECT_EQ(dump(cold.stats), dump(plain.stats));
    EXPECT_EQ(dump(warm.stats), dump(plain.stats));
    EXPECT_EQ(warm.totalCycles, plain.totalCycles);
    EXPECT_EQ(warm.dramReadWords, plain.dramReadWords);
    EXPECT_EQ(warm.layers.size(), plain.layers.size());
    for (std::size_t i = 0; i < warm.layers.size(); ++i) {
        EXPECT_EQ(warm.layers[i].name, plain.layers[i].name);
        EXPECT_EQ(warm.layers[i].totalCycles,
                  plain.layers[i].totalCycles);
    }
}

TEST(CachedRunner, AuditConfigBypassesCache)
{
    SimConfig cfg = baseConfig();
    cfg.audit = true;
    LayerResultCache cache;
    const core::RunResult run =
        runTopologyCached(cfg, smallTopology(), &cache);
    EXPECT_TRUE(run.audited);
    EXPECT_TRUE(run.audit.clean());
    EXPECT_EQ(cache.stats().inserts, 0u)
        << "audited runs must not populate the cache";
}

// ---------------------------------------------------------------------
// StatsRegistry binary round-trip.

TEST(StatsSerialize, RoundTripReproducesDump)
{
    obs::StatsRegistry reg;
    reg.addScalar("a.scalar", "a scalar", 1.0 / 3.0);
    reg.addVectorElem("b.vector", "x", "a vector", 2.5);
    reg.addVectorElem("b.vector", "y", "a vector", -0.125);
    obs::Histogram h;
    h.sample(1.0);
    h.sample(100.0);
    h.sample(12345.0);
    reg.addDistribution("c.dist", "a distribution", h);
    obs::FormulaSpec f;
    f.numerator = {{"a.scalar", 2.0}};
    f.denominator = {{"b.vector", 1.0}};
    reg.addFormula("d.formula", "a formula", f);

    ByteWriter out;
    reg.serialize(out);
    ByteReader in(out.buffer());
    obs::StatsRegistry copy;
    ASSERT_TRUE(copy.deserialize(in));
    EXPECT_EQ(dump(copy), dump(reg));
}

TEST(StatsSerialize, TruncatedBufferRejectedCleanly)
{
    obs::StatsRegistry reg;
    reg.addScalar("a", "a", 1.0);
    reg.addScalar("b", "b", 2.0);
    ByteWriter out;
    reg.serialize(out);

    for (std::size_t cut = 0; cut < out.size(); cut += 7) {
        ByteReader in(std::string_view(out.buffer()).substr(0, cut));
        obs::StatsRegistry copy;
        EXPECT_FALSE(copy.deserialize(in)) << "cut=" << cut;
        EXPECT_TRUE(copy.empty());
    }
}

// ---------------------------------------------------------------------
// Cache mechanics: LRU eviction and persistence.

TEST(LayerCache, EvictsLeastRecentlyUsedUnderByteBudget)
{
    const std::string payload(100, 'p');
    LayerResultCache cache(250);
    cache.insert(1, payload);
    cache.insert(2, payload);
    std::string got;
    ASSERT_TRUE(cache.lookup(1, got)); // refresh 1; 2 is now LRU
    cache.insert(3, payload);          // evicts 2

    EXPECT_TRUE(cache.lookup(1, got));
    EXPECT_FALSE(cache.lookup(2, got));
    EXPECT_TRUE(cache.lookup(3, got));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_LE(stats.bytes, 250u);

    // An entry bigger than the whole budget is refused outright.
    cache.insert(4, std::string(1000, 'x'));
    EXPECT_FALSE(cache.lookup(4, got));
}

TEST(LayerCache, PersistenceRoundTrip)
{
    const std::string path = tempPath("cache_roundtrip.bin");
    LayerResultCache cache;
    cache.insert(10, "alpha");
    cache.insert(20, std::string("beta\0gamma", 10));
    ASSERT_TRUE(cache.save(path));

    LayerResultCache loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.stats().loadedEntries, 2u);
    std::string got;
    ASSERT_TRUE(loaded.lookup(10, got));
    EXPECT_EQ(got, "alpha");
    ASSERT_TRUE(loaded.lookup(20, got));
    EXPECT_EQ(got, std::string("beta\0gamma", 10));
    std::remove(path.c_str());
}

TEST(LayerCache, MissingFileIsAColdStart)
{
    LayerResultCache cache;
    EXPECT_FALSE(cache.load(tempPath("never_written.bin")));
    EXPECT_EQ(cache.stats().loadRejected, 0u);
}

TEST(LayerCache, TruncatedFileKeepsValidPrefix)
{
    const std::string path = tempPath("cache_truncated.bin");
    LayerResultCache cache;
    cache.insert(1, std::string(64, 'a'));
    cache.insert(2, std::string(64, 'b'));
    ASSERT_TRUE(cache.save(path));

    // Chop into the last entry: its checksum cannot verify.
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    bytes.resize(bytes.size() - 10);
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << bytes;

    LayerResultCache reloaded;
    reloaded.load(path);
    const auto stats = reloaded.stats();
    EXPECT_EQ(stats.loadedEntries, 1u);
    EXPECT_GE(stats.loadRejected, 1u);
    std::string got;
    EXPECT_TRUE(reloaded.lookup(1, got)
                || reloaded.lookup(2, got));
    std::remove(path.c_str());
}

TEST(LayerCache, CorruptPayloadRejectedByChecksum)
{
    const std::string path = tempPath("cache_corrupt.bin");
    LayerResultCache cache;
    cache.insert(1, std::string(64, 'a'));
    ASSERT_TRUE(cache.save(path));

    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30); // inside the payload
    f.put('Z');
    f.close();

    LayerResultCache reloaded;
    reloaded.load(path);
    EXPECT_EQ(reloaded.stats().loadedEntries, 0u);
    EXPECT_GE(reloaded.stats().loadRejected, 1u);
    std::remove(path.c_str());
}

TEST(LayerCache, GarbageHeaderRejected)
{
    const std::string path = tempPath("cache_garbage.bin");
    std::ofstream(path, std::ios::binary)
        << "this is not a cache file at all";
    LayerResultCache cache;
    EXPECT_FALSE(cache.load(path));
    EXPECT_GE(cache.stats().loadRejected, 1u);
    EXPECT_EQ(cache.stats().entries, 0u);
    std::remove(path.c_str());
}

TEST(LayerCache, StatsRegistryExportsCounters)
{
    LayerResultCache cache;
    cache.insert(1, "x");
    std::string got;
    cache.lookup(1, got);
    cache.lookup(2, got);
    obs::StatsRegistry reg;
    cache.registerStats(reg);
    EXPECT_EQ(reg.scalarValue("sim.cache.hits"), 1.0);
    EXPECT_EQ(reg.scalarValue("sim.cache.misses"), 1.0);
    EXPECT_EQ(reg.scalarValue("sim.cache.inserts"), 1.0);
    EXPECT_DOUBLE_EQ(reg.evaluate("sim.cache.hitRate"), 0.5);
}

// ---------------------------------------------------------------------
// Request protocol.

TEST(ServerProtocol, MalformedJsonReportsError)
{
    Server server({});
    obs::JsonValue doc;
    ASSERT_TRUE(
        obs::parseJson(server.handleRequest("{nope"), doc));
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_NE(doc.stringAt("error"), "");
}

TEST(ServerProtocol, UnknownTypeAndMissingWorkloadReportErrors)
{
    Server server({});
    obs::JsonValue doc =
        response(server, R"({"id": 7, "type": "frobnicate"})");
    EXPECT_FALSE(doc.find("ok")->boolean);
    EXPECT_DOUBLE_EQ(doc.numberAt("id"), 7.0);

    doc = response(server, R"({"type": "run"})");
    EXPECT_FALSE(doc.find("ok")->boolean);

    doc = response(server,
                   R"({"type": "run", "workload": "nonesuch"})");
    EXPECT_FALSE(doc.find("ok")->boolean);
}

TEST(ServerProtocol, PingStatsShutdown)
{
    Server server({});
    obs::JsonValue doc = response(server, R"({"type": "ping"})");
    EXPECT_TRUE(doc.find("ok")->boolean);

    doc = response(server, R"({"type": "stats"})");
    EXPECT_TRUE(doc.find("ok")->boolean);
    ASSERT_NE(doc.findPath("result.cache"), nullptr);

    std::istringstream in(R"({"type": "shutdown"})"
                          "\n{\"type\": \"ping\"}\n");
    std::ostringstream out;
    EXPECT_EQ(server.serve(in, out), 0);
    // One response only: shutdown stops the loop before the ping.
    const std::string transcript = out.str();
    EXPECT_EQ(
        std::count(transcript.begin(), transcript.end(), '\n'), 1);
}

TEST(ServerProtocol, InlineTopologyRunWithConfigOverlay)
{
    Server server({});
    const obs::JsonValue doc = response(server, R"({
        "id": "req-1", "type": "run",
        "config": {"architecture": {"ArrayHeight": 8,
                                    "ArrayWidth": 8}},
        "topology": {"name": "inline", "layers": [
            {"type": "gemm", "name": "g", "m": 16, "n": 16, "k": 16},
            {"type": "conv", "name": "c", "ifmapH": 8, "ifmapW": 8,
             "filterH": 3, "filterW": 3, "channels": 4,
             "numFilters": 8, "stride": 1}
        ]}})");
    ASSERT_TRUE(doc.find("ok")->boolean) << doc.stringAt("error");
    EXPECT_EQ(doc.stringAt("id"), "req-1");
    const obs::JsonValue* layers = doc.findPath("result.layers");
    ASSERT_NE(layers, nullptr);
    ASSERT_EQ(layers->items.size(), 2u);
    EXPECT_EQ(layers->items[0].stringAt("name"), "g");
    EXPECT_GT(layers->items[0].numberAt("totalCycles"), 0.0);
}

TEST(ServerProtocol, RepeatedRunsAreByteIdenticalAndWarm)
{
    Server server({});
    const std::string request =
        R"({"type": "run", "workload": "resnet18"})";
    const std::string first = server.handleRequest(request);
    const auto cold = server.cache().stats();
    const std::string second = server.handleRequest(request);
    const auto warm = server.cache().stats();

    EXPECT_EQ(first, second);
    EXPECT_EQ(warm.misses, cold.misses);
    EXPECT_GT(warm.hits, cold.hits);
}

TEST(ServerProtocol, CacheFalseBypassesCache)
{
    Server server({});
    const std::string request =
        R"({"type": "run", "workload": "resnet18", "cache": false})";
    (void)server.handleRequest(request);
    const auto stats = server.cache().stats();
    EXPECT_EQ(stats.inserts, 0u);
    EXPECT_EQ(stats.hits + stats.misses, 0u);
}

TEST(ServerProtocol, ConcurrentRequestsShareTheCacheSafely)
{
    Server server({});
    const std::string request = R"({"type": "run",
        "topology": {"name": "t", "layers": [
            {"type": "gemm", "m": 32, "n": 32, "k": 32}]}})";
    const std::string expected = server.handleRequest(request);

    std::vector<std::thread> threads;
    std::vector<std::string> results(8);
    for (std::size_t i = 0; i < results.size(); ++i) {
        threads.emplace_back([&, i] {
            for (int rep = 0; rep < 4; ++rep)
                results[i] = server.handleRequest(request);
        });
    }
    for (auto& t : threads)
        t.join();
    for (const auto& r : results)
        EXPECT_EQ(r, expected);
}
