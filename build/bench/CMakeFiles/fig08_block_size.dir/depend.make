# Empty dependencies file for fig08_block_size.
# This may be replaced when dependencies are built.
