#include "energy/action_counts.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace scalesim::energy
{

namespace
{

/** Number of banked row-buffer trackers in the repeat lookup. */
constexpr std::uint32_t kTrackerBanks = 32;

} // namespace

void
ActionCounts::merge(const ActionCounts& other)
{
    macRandom += other.macRandom;
    macConstant += other.macConstant;
    macGated += other.macGated;
    vectorOps += other.vectorOps;
    ifmapSpadRead += other.ifmapSpadRead;
    ifmapSpadWrite += other.ifmapSpadWrite;
    weightSpadRead += other.weightSpadRead;
    weightSpadWrite += other.weightSpadWrite;
    psumSpadRead += other.psumSpadRead;
    psumSpadWrite += other.psumSpadWrite;
    ifmapSram.merge(other.ifmapSram);
    filterSram.merge(other.filterSram);
    ofmapSram.merge(other.ofmapSram);
    dramReadWords += other.dramReadWords;
    dramWriteWords += other.dramWriteWords;
    nocWords += other.nocWords;
    cycles += other.cycles;
}

bool
ActionCountVisitor::RowTracker::access(std::uint64_t row)
{
    auto it = std::find(rows.begin(), rows.end(), row);
    if (it != rows.end()) {
        std::rotate(rows.begin(), it, it + 1); // move to MRU
        return true;
    }
    rows.insert(rows.begin(), row);
    if (rows.size() > capacity)
        rows.pop_back();
    return false;
}

ActionCountVisitor::ActionCountVisitor(const EnergyConfig& cfg,
                                       bool clock_gating)
    : cfg_(cfg), clockGating_(clock_gating)
{
    if (cfg_.rowSize == 0)
        fatal("energy RowSize must be non-zero");
    if (cfg_.bankSize == 0)
        fatal("energy BankSize must be non-zero");
}

void
ActionCountVisitor::beginLayer(const systolic::FoldGrid& grid,
                               const systolic::OperandMap& /*operands*/)
{
    utilization_ = grid.utilization();
    numPes_ = static_cast<std::uint64_t>(grid.arrayRows())
        * grid.arrayCols();
    arrayRows_ = grid.arrayRows();
    arrayCols_ = grid.arrayCols();
    auto reset = [&](RowTracker& t) {
        t.capacity = cfg_.bankSize;
        t.clear();
    };
    ifmapRows_.resize(kTrackerBanks);
    filterRows_.resize(kTrackerBanks);
    ofmapReadRows_.resize(kTrackerBanks);
    ofmapWriteRows_.resize(kTrackerBanks);
    for (auto& t : ifmapRows_) reset(t);
    for (auto& t : filterRows_) reset(t);
    for (auto& t : ofmapReadRows_) reset(t);
    for (auto& t : ofmapWriteRows_) reset(t);
    layerStart_ = counts_;
}

void
ActionCountVisitor::countAccesses(std::vector<RowTracker>& trackers,
                                  std::span<const Addr> addrs,
                                  Count& random, Count& repeat)
{
    for (Addr addr : addrs) {
        const std::uint64_t row = addr / cfg_.rowSize;
        RowTracker& tracker = trackers[row % kTrackerBanks];
        if (tracker.access(row))
            ++repeat;
        else
            ++random;
    }
}

void
ActionCountVisitor::cycle(Cycle /*clk*/,
                          std::span<const Addr> ifmap_reads,
                          std::span<const Addr> filter_reads,
                          std::span<const Addr> ofmap_reads,
                          std::span<const Addr> ofmap_writes)
{
    countAccesses(ifmapRows_, ifmap_reads, counts_.ifmapSram.readRandom,
                  counts_.ifmapSram.readRepeat);
    countAccesses(filterRows_, filter_reads,
                  counts_.filterSram.readRandom,
                  counts_.filterSram.readRepeat);
    countAccesses(ofmapReadRows_, ofmap_reads,
                  counts_.ofmapSram.readRandom,
                  counts_.ofmapSram.readRepeat);
    countAccesses(ofmapWriteRows_, ofmap_writes,
                  counts_.ofmapSram.writeRandom,
                  counts_.ofmapSram.writeRepeat);
}

void
ActionCountVisitor::endLayer(Cycle total_cycles)
{
    counts_.cycles += total_cycles;

    // MAC action counts: PEs x cycles x utilization are real MACs; the
    // remainder is constant (clocked) or gated (§VII-E).
    const std::uint64_t pe_cycles = numPes_ * total_cycles;
    const Count macs = static_cast<Count>(
        static_cast<double>(pe_cycles) * utilization_ + 0.5);
    counts_.macRandom += macs;
    const Count idle_macs = pe_cycles > macs ? pe_cycles - macs : 0;
    if (clockGating_)
        counts_.macGated += idle_macs;
    else
        counts_.macConstant += idle_macs;

    // Per-layer SRAM access deltas (the visitor may span many layers).
    const Count ifmap_layer_reads = counts_.ifmapSram.reads()
        - layerStart_.ifmapSram.reads();
    const Count filter_layer_reads = counts_.filterSram.reads()
        - layerStart_.filterSram.reads();

    // PE scratchpads follow §VII-E's dataflow-sensitive rules: writes
    // track the SRAM reads that deliver new data, reads track MACs.
    counts_.ifmapSpadWrite += ifmap_layer_reads;
    counts_.ifmapSpadRead += macs;
    counts_.weightSpadWrite += filter_layer_reads;
    counts_.weightSpadRead += macs;
    counts_.psumSpadRead += macs;
    counts_.psumSpadWrite += macs;

    // Idle port-cycles: ifmap SRAM feeds R ports, filter and ofmap C.
    const Count ifmap_ports = static_cast<Count>(arrayRows_)
        * total_cycles;
    const Count filter_ports = static_cast<Count>(arrayCols_)
        * total_cycles;
    const Count ofmap_ports = static_cast<Count>(arrayCols_)
        * total_cycles;
    const Count ifmap_used = ifmap_layer_reads;
    const Count filter_used = filter_layer_reads;
    const Count ofmap_used = counts_.ofmapSram.reads()
        + counts_.ofmapSram.writes() - layerStart_.ofmapSram.reads()
        - layerStart_.ofmapSram.writes();
    counts_.ifmapSram.idle += ifmap_ports > ifmap_used
        ? ifmap_ports - ifmap_used : 0;
    counts_.filterSram.idle += filter_ports > filter_used
        ? filter_ports - filter_used : 0;
    counts_.ofmapSram.idle += ofmap_ports > ofmap_used
        ? ofmap_ports - ofmap_used : 0;

    // Every SRAM<->array word traverses the array-edge NoC.
    counts_.nocWords += ifmap_used + filter_used + ofmap_used;
}

ActionCounts
analyticalActionCounts(const systolic::FoldGrid& grid,
                       const EnergyConfig& cfg, bool clock_gating)
{
    if (cfg.rowSize == 0)
        fatal("energy RowSize must be non-zero");
    ActionCounts counts;
    counts.cycles = grid.totalCycles();

    const std::uint64_t pe_cycles = static_cast<std::uint64_t>(
        grid.arrayRows()) * grid.arrayCols() * counts.cycles;
    const Count macs = grid.gemm().macs();
    counts.macRandom = macs;
    const Count idle_macs = pe_cycles > macs ? pe_cycles - macs : 0;
    if (clock_gating)
        counts.macGated = idle_macs;
    else
        counts.macConstant = idle_macs;

    const auto sram = grid.sramAccessCounts();
    // Every systolic access stream walks row buffers in a structured
    // way: even skewed streams revisit the block a neighboring feeder
    // touched one cycle earlier (see ActionCountVisitor), so the
    // repeat fraction of a `rowSize`-word row buffer approaches
    // (rowSize - 1) / rowSize for reads and writes alike. The trace
    // path measures the exact split; this closed form estimates it.
    const double seq = 1.0
        - 1.0 / static_cast<double>(cfg.rowSize);
    auto split = [&](Count total, double repeat_fraction, Count& random,
                     Count& repeat) {
        repeat = static_cast<Count>(
            static_cast<double>(total) * repeat_fraction + 0.5);
        random = total - repeat;
    };
    split(sram.ifmapReads, seq, counts.ifmapSram.readRandom,
          counts.ifmapSram.readRepeat);
    split(sram.filterReads, seq, counts.filterSram.readRandom,
          counts.filterSram.readRepeat);
    split(sram.ofmapWrites, seq, counts.ofmapSram.writeRandom,
          counts.ofmapSram.writeRepeat);
    split(sram.ofmapReads, seq, counts.ofmapSram.readRandom,
          counts.ofmapSram.readRepeat);

    counts.ifmapSpadWrite = counts.ifmapSram.reads();
    counts.ifmapSpadRead = macs;
    counts.weightSpadWrite = counts.filterSram.reads();
    counts.weightSpadRead = macs;
    counts.psumSpadRead = macs;
    counts.psumSpadWrite = macs;

    const Count ifmap_ports = static_cast<Count>(grid.arrayRows())
        * counts.cycles;
    const Count filter_ports = static_cast<Count>(grid.arrayCols())
        * counts.cycles;
    const Count ofmap_ports = filter_ports;
    const Count ifmap_used = counts.ifmapSram.reads();
    const Count filter_used = counts.filterSram.reads();
    const Count ofmap_used = counts.ofmapSram.reads()
        + counts.ofmapSram.writes();
    counts.ifmapSram.idle = ifmap_ports > ifmap_used
        ? ifmap_ports - ifmap_used : 0;
    counts.filterSram.idle = filter_ports > filter_used
        ? filter_ports - filter_used : 0;
    counts.ofmapSram.idle = ofmap_ports > ofmap_used
        ? ofmap_ports - ofmap_used : 0;
    counts.nocWords = ifmap_used + filter_used + ofmap_used;
    return counts;
}

} // namespace scalesim::energy
