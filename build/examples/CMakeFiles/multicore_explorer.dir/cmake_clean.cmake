file(REMOVE_RECURSE
  "CMakeFiles/multicore_explorer.dir/multicore_explorer.cpp.o"
  "CMakeFiles/multicore_explorer.dir/multicore_explorer.cpp.o.d"
  "multicore_explorer"
  "multicore_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
