
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systolic/demand.cpp" "src/systolic/CMakeFiles/scalesim_systolic.dir/demand.cpp.o" "gcc" "src/systolic/CMakeFiles/scalesim_systolic.dir/demand.cpp.o.d"
  "/root/repo/src/systolic/mapping.cpp" "src/systolic/CMakeFiles/scalesim_systolic.dir/mapping.cpp.o" "gcc" "src/systolic/CMakeFiles/scalesim_systolic.dir/mapping.cpp.o.d"
  "/root/repo/src/systolic/memory.cpp" "src/systolic/CMakeFiles/scalesim_systolic.dir/memory.cpp.o" "gcc" "src/systolic/CMakeFiles/scalesim_systolic.dir/memory.cpp.o.d"
  "/root/repo/src/systolic/scratchpad.cpp" "src/systolic/CMakeFiles/scalesim_systolic.dir/scratchpad.cpp.o" "gcc" "src/systolic/CMakeFiles/scalesim_systolic.dir/scratchpad.cpp.o.d"
  "/root/repo/src/systolic/trace_io.cpp" "src/systolic/CMakeFiles/scalesim_systolic.dir/trace_io.cpp.o" "gcc" "src/systolic/CMakeFiles/scalesim_systolic.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scalesim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
