/**
 * @file
 * Ablation: DRAM row-buffer page policy. Open-page exploits row
 * locality (streaming accelerator traffic loves it); closed-page
 * auto-precharges, trading away hits to avoid conflict penalties on
 * scattered traffic. Evaluated on the trace-driven API with a
 * streaming trace, a row-thrashing trace, and a paced random trace.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "dram/system.hpp"

using namespace scalesim;
using namespace scalesim::dram;

namespace
{

TraceResult
replay(const std::vector<TraceEntry>& trace, PagePolicy policy)
{
    DramSystemConfig cfg;
    cfg.timing = timingPreset("DDR4_2400");
    cfg.pagePolicy = policy;
    DramSystem sys(cfg);
    return sys.runTrace(trace);
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: open- vs closed-page DRAM policy ===\n");
    const DramTiming t = timingPreset("DDR4_2400");

    std::vector<TraceEntry> streaming;
    for (int i = 0; i < 1024; ++i)
        streaming.push_back({static_cast<Cycle>(i),
                             static_cast<Addr>(i) * 64, false});

    std::vector<TraceEntry> thrash;
    for (int i = 0; i < 1024; ++i) {
        thrash.push_back({static_cast<Cycle>(i) * 150,
                          static_cast<Addr>(i % 2) * t.rowBytes
                              * t.banksPerRank,
                          false});
    }

    Rng rng(99);
    std::vector<TraceEntry> random_paced;
    for (int i = 0; i < 1024; ++i) {
        random_paced.push_back({static_cast<Cycle>(i) * 150,
                                rng.below(1u << 28) & ~63ull, false});
    }

    benchutil::Table table({12, 16, 16, 12});
    table.row({"trace", "open avg lat", "closed avg lat", "winner"});
    table.rule();
    struct Case
    {
        const char* name;
        const std::vector<TraceEntry>* trace;
    };
    const Case cases[] = {{"streaming", &streaming},
                          {"row-thrash", &thrash},
                          {"random", &random_paced}};
    bool open_wins_streaming = false;
    bool closed_wins_thrash = false;
    for (const auto& c : cases) {
        const auto open = replay(*c.trace, PagePolicy::Open);
        const auto closed = replay(*c.trace, PagePolicy::Closed);
        const double lo = open.stats.avgReadLatency();
        const double lc = closed.stats.avgReadLatency();
        table.row({c.name, benchutil::fmt("%.1f", lo),
                   benchutil::fmt("%.1f", lc),
                   lo <= lc ? "open" : "closed"});
        if (std::string(c.name) == "streaming" && lo < lc)
            open_wins_streaming = true;
        if (std::string(c.name) == "row-thrash" && lc < lo)
            closed_wins_thrash = true;
    }
    table.rule();
    std::printf("open-page wins streaming, closed-page wins paced "
                "row-thrash: %s\n",
                (open_wins_streaming && closed_wins_thrash) ? "yes"
                                                            : "NO");
    return 0;
}
