#include "serve/cache.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/hash.hpp"
#include "common/log.hpp"
#include "obs/stats.hpp"

namespace scalesim::serve
{

namespace
{

constexpr char kMagic[4] = {'S', 'S', 'L', 'C'};
constexpr std::uint32_t kVersion = 1;
/** Reject persisted payloads claiming more than this (corruption). */
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

} // namespace

bool
LayerResultCache::lookup(std::uint64_t key, std::string& payload)
{
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lruPos);
    payload = it->second.payload;
    ++stats_.hits;
    return true;
}

void
LayerResultCache::insert(std::uint64_t key, std::string payload)
{
    MutexLock lock(mutex_);
    if (budgetBytes_ != 0 && payload.size() > budgetBytes_)
        return; // would evict the whole cache for one entry
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Concurrent workers can race to compute the same layer; the
        // payload is a pure function of the key, so keep the first.
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return;
    }
    bytes_ += payload.size();
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(payload), lru_.begin()});
    ++stats_.inserts;
    evictToBudget();
    stats_.bytes = bytes_;
    stats_.entries = entries_.size();
}

void
LayerResultCache::evictToBudget()
{
    if (budgetBytes_ == 0)
        return;
    while (bytes_ > budgetBytes_ && !lru_.empty()) {
        const std::uint64_t victim = lru_.back();
        auto it = entries_.find(victim);
        bytes_ -= it->second.payload.size();
        entries_.erase(it);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

CacheStats
LayerResultCache::stats() const
{
    MutexLock lock(mutex_);
    CacheStats snap = stats_;
    snap.bytes = bytes_;
    snap.entries = entries_.size();
    return snap;
}

void
LayerResultCache::registerStats(obs::StatsRegistry& reg,
                                const std::string& prefix) const
{
    const CacheStats snap = stats();
    reg.addScalar(prefix + ".hits", "layer results served from cache",
                  static_cast<double>(snap.hits));
    reg.addScalar(prefix + ".misses", "layer lookups that simulated",
                  static_cast<double>(snap.misses));
    reg.addScalar(prefix + ".inserts", "entries inserted",
                  static_cast<double>(snap.inserts));
    reg.addScalar(prefix + ".evictions",
                  "entries evicted by the LRU byte budget",
                  static_cast<double>(snap.evictions));
    reg.addScalar(prefix + ".loadedEntries",
                  "entries accepted from a persisted cache file",
                  static_cast<double>(snap.loadedEntries));
    reg.addScalar(prefix + ".loadRejected",
                  "persisted entries rejected as corrupt",
                  static_cast<double>(snap.loadRejected));
    reg.addScalar(prefix + ".bytes", "payload bytes currently held",
                  static_cast<double>(snap.bytes));
    reg.addScalar(prefix + ".entries", "entries currently held",
                  static_cast<double>(snap.entries));
    obs::FormulaSpec hit_rate;
    hit_rate.numerator = {{prefix + ".hits", 1.0}};
    hit_rate.denominator = {{prefix + ".hits", 1.0},
                            {prefix + ".misses", 1.0}};
    reg.addFormula(prefix + ".hitRate", "hits / lookups", hit_rate);
}

bool
LayerResultCache::save(const std::string& path) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(kMagic, sizeof(kMagic));
        const std::uint32_t version = kVersion;
        out.write(reinterpret_cast<const char*>(&version),
                  sizeof(version));
        MutexLock lock(mutex_);
        // Walk LRU back-to-front so a reload preserves recency order:
        // the most recently used entry is written last and therefore
        // refreshed last on load.
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
            const Entry& entry = entries_.at(*it);
            const std::uint64_t key = *it;
            const std::uint64_t size = entry.payload.size();
            const std::uint64_t checksum =
                Fnv1a::of(entry.payload.data(), entry.payload.size());
            out.write(reinterpret_cast<const char*>(&key), sizeof(key));
            out.write(reinterpret_cast<const char*>(&size),
                      sizeof(size));
            out.write(entry.payload.data(),
                      static_cast<std::streamsize>(size));
            out.write(reinterpret_cast<const char*>(&checksum),
                      sizeof(checksum));
        }
        if (!out)
            return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
LayerResultCache::load(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false; // cold start, not an error
    char magic[4] = {};
    std::uint32_t version = 0;
    in.read(magic, sizeof(magic));
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0
        || version != kVersion) {
        warn("cache file %s: bad header, ignoring", path.c_str());
        MutexLock lock(mutex_);
        ++stats_.loadRejected;
        return false;
    }
    std::uint64_t accepted = 0, rejected = 0;
    while (true) {
        std::uint64_t key = 0, size = 0;
        in.read(reinterpret_cast<char*>(&key), sizeof(key));
        if (in.gcount() == 0)
            break; // clean EOF
        in.read(reinterpret_cast<char*>(&size), sizeof(size));
        if (!in || size > kMaxPayloadBytes) {
            ++rejected;
            break;
        }
        std::string payload(static_cast<std::size_t>(size), '\0');
        in.read(payload.data(), static_cast<std::streamsize>(size));
        std::uint64_t checksum = 0;
        in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
        if (!in
            || Fnv1a::of(payload.data(), payload.size()) != checksum) {
            ++rejected;
            break; // trailing entries are unreliable past corruption
        }
        insert(key, std::move(payload));
        ++accepted;
    }
    if (rejected > 0) {
        warn("cache file %s: dropped corrupt tail (%llu entries kept)",
             path.c_str(), static_cast<unsigned long long>(accepted));
    }
    MutexLock lock(mutex_);
    stats_.loadedEntries += accepted;
    stats_.loadRejected += rejected;
    return true;
}

void
LayerResultCache::clear()
{
    MutexLock lock(mutex_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
    stats_.bytes = 0;
    stats_.entries = 0;
}

} // namespace scalesim::serve
