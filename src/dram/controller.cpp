#include "dram/controller.hpp"

#include <algorithm>
#include <cctype>

#include "check/contract.hpp"
#include "common/log.hpp"

namespace scalesim::dram
{

void
DramStats::merge(const DramStats& other)
{
    reads += other.reads;
    writes += other.writes;
    rowHits += other.rowHits;
    refreshes += other.refreshes;
    rowMisses += other.rowMisses;
    rowConflicts += other.rowConflicts;
    readBytes += other.readBytes;
    writeBytes += other.writeBytes;
    totalReadLatency += other.totalReadLatency;
    readQueueWait += other.readQueueWait;
    readRefreshWait += other.readRefreshWait;
    readServiceTime += other.readServiceTime;
    firstArrival = std::min(firstArrival, other.firstArrival);
    lastCompletion = std::max(lastCompletion, other.lastCompletion);
}

DramEngine
dramEngineFromString(std::string_view text)
{
    std::string lower;
    for (char ch : text) {
        if (ch == '-' || ch == '_')
            continue;
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(ch))));
    }
    if (lower == "eventskip")
        return DramEngine::EventSkip;
    if (lower == "stepped")
        return DramEngine::Stepped;
    fatal("unknown DRAM engine '%.*s' (eventskip|stepped)",
          static_cast<int>(text.size()), text.data());
}

const char*
toString(DramEngine engine)
{
    return engine == DramEngine::EventSkip ? "eventskip" : "stepped";
}

Channel::Channel(const DramTiming& timing, std::uint32_t ranks,
                 std::uint32_t reorder_window,
                 std::uint32_t hit_streak_cap, PagePolicy policy,
                 DramEngine engine)
    : timing_(timing), reorderWindow_(reorder_window),
      hitStreakCap_(hit_streak_cap), policy_(policy), engine_(engine),
      banks_(static_cast<std::size_t>(ranks) * timing.banksPerRank),
      bankStats_(banks_.size()), nextRefresh_(ranks, timing.tREFI)
{
    if (ranks == 0)
        fatal("channel must have at least one rank");
    if (reorderWindow_ == 0)
        reorderWindow_ = 1;
}

std::uint64_t
Channel::enqueue(const DecodedAddr& addr, bool write, Cycle arrival)
{
    const std::size_t gbank = static_cast<std::size_t>(addr.rank)
        * timing_.banksPerRank + addr.bank;
    if (gbank >= banks_.size())
        fatal("decoded bank %zu out of range (%zu banks)", gbank,
              banks_.size());
    Pending req;
    req.addr = addr;
    req.write = write;
    req.arrival = arrival;
    req.seq = nextSeq_++;
    req.gbank = static_cast<std::uint32_t>(gbank);
    // Ordered insert. Arrivals are usually nondecreasing (push_back),
    // but interleaved producers and merged trace files can run late:
    // an out-of-order arrival used to be silently clamped up to the
    // queue tail, distorting its latency and its FR-FCFS age. Instead
    // place it where its arrival belongs, behind every request that
    // arrived no later (FCFS ties keep enqueue order).
    auto pos = pending_.end();
    while (pos != pending_.begin() && (pos - 1)->arrival > arrival)
        --pos;
    [[maybe_unused]] const auto it = pending_.insert(pos, req);
    SIM_CHECK((it == pending_.begin()
               || (it - 1)->arrival <= it->arrival)
                  && (it + 1 == pending_.end()
                      || it->arrival <= (it + 1)->arrival),
              "pending queue stays sorted by arrival");
    queueOccupancy_.sample(static_cast<double>(pending_.size()));
    stats_.firstArrival = std::min(stats_.firstArrival, arrival);
    return req.seq;
}

std::size_t
Channel::pickNext(Cycle decision_time)
{
    // FR-FCFS over the reorder window: oldest row-hit first, bounded by
    // the hit-streak cap to prevent starvation; otherwise the oldest.
    const std::size_t window = std::min<std::size_t>(pending_.size(),
                                                     reorderWindow_);
    for (std::size_t i = 0; i < window; ++i) {
        const Pending& req = pending_[i];
        // The queue is sorted by arrival, so everything past the first
        // future request is also in the future.
        if (req.arrival > decision_time)
            break;
        const Bank& bank = banks_[req.gbank];
        const bool hit = bank.open && bank.row == req.addr.row;
        if (hit) {
            const bool capped = hitStreak_ >= hitStreakCap_
                && streakBank_ == req.gbank
                && streakRow_ == req.addr.row;
            if (!capped)
                return i;
        }
    }
    // No row hit available (or streak capped): fall back to the oldest
    // request. Sorted arrivals make that index 0 in both cases — when
    // nothing has arrived by decision_time, the front is the earliest
    // future arrival, not an arbitrary queue-order artifact.
    return 0;
}

Cycle
Channel::serviceOne(const Pending& req)
{
    const std::size_t gbank = req.gbank;
    Bank& bank = banks_[gbank];
    Cycle dt = std::max(req.arrival, lastColCmd_);
    // Queue wait ends when the controller turns to this request; the
    // refresh block below may push `dt` further (refresh wait), and
    // whatever remains until data_end is service. The three components
    // sum to (data_end - arrival) exactly — the CPI-stack contract.
    const Cycle queue_done = dt;

    // All-bank refresh, per rank: every tREFI the rank precharges and
    // refreshes for tRFC; requests to it during the window wait, and
    // its row buffers come back closed. Other ranks keep their open
    // rows — tREFI/tRFC are rank-local timings.
    if (timing_.tREFI > 0) {
        Cycle& next = nextRefresh_[req.addr.rank];
        const std::size_t first =
            static_cast<std::size_t>(req.addr.rank)
            * timing_.banksPerRank;
        auto refreshRank = [&](Cycle end) {
            for (std::size_t b = first;
                 b < first + timing_.banksPerRank; ++b) {
                banks_[b].open = false;
                banks_[b].preReady = std::max(banks_[b].preReady, end);
            }
            ++stats_.refreshes;
            next += timing_.tREFI;
        };
        // Refreshes whose window already closed before this request:
        // exactly one count per elapsed tREFI, each leaving the rank's
        // rows closed as of its end.
        if (engine_ == DramEngine::EventSkip) {
            // Event-skip: the i-th catch-up refresh ends at
            // next + i*tREFI + tRFC, so k = floor((dt - tRFC - next) /
            // tREFI) + 1 of them fit before dt. Their effects fold
            // into one bank sweep (ends increase, so only the last
            // matters for preReady) and one stats/cursor bump —
            // identical to running the Stepped loop k times.
            if (next + timing_.tRFC <= dt) {
                const std::uint64_t k =
                    (dt - timing_.tRFC - next) / timing_.tREFI + 1;
                const Cycle last_end = next
                    + (k - 1) * timing_.tREFI + timing_.tRFC;
                for (std::size_t b = first;
                     b < first + timing_.banksPerRank; ++b) {
                    banks_[b].open = false;
                    banks_[b].preReady =
                        std::max(banks_[b].preReady, last_end);
                }
                stats_.refreshes += k;
                next += k * timing_.tREFI;
            }
        } else {
            while (next + timing_.tRFC <= dt)
                refreshRank(next + timing_.tRFC);
        }
        // Refresh in progress (or due) at dt: the request waits it out.
        if (dt >= next) {
            const Cycle end = next + timing_.tRFC;
            refreshRank(end);
            dt = end;
        }
    }
    const Cycle refresh_done = dt;

    Cycle col_ready;
    RowOutcome outcome;
    if (bank.open && bank.row == req.addr.row) {
        outcome = RowOutcome::Hit;
        col_ready = std::max(dt, bank.rcdDone);
    } else {
        Cycle act_start;
        if (bank.open) {
            outcome = RowOutcome::Conflict;
            const Cycle pre = std::max(dt, bank.preReady);
            act_start = pre + timing_.tRP;
        } else {
            outcome = RowOutcome::Miss;
            act_start = std::max(dt, bank.preReady);
        }
        act_start = std::max(act_start, lastActAny_ + timing_.tRRD);
        act_start = std::max(act_start, bank.lastAct + timing_.tRC);
        if (actWindow_.size() >= 4) {
            act_start = std::max(act_start,
                                 actWindow_.front() + timing_.tFAW);
        }
        bank.lastAct = act_start;
        lastActAny_ = act_start;
        actWindow_.push_back(act_start);
        if (actWindow_.size() > 4)
            actWindow_.pop_front();
        bank.rcdDone = act_start + timing_.tRCD;
        bank.open = true;
        bank.row = req.addr.row;
        col_ready = bank.rcdDone;
    }

    Cycle col_cmd = std::max(col_ready, lastColCmd_ + timing_.tCCD);
    if (!req.write && lastWasWrite_) {
        // Write-to-read turnaround on the shared bus.
        col_cmd = std::max(col_cmd, lastWriteDataEnd_ + timing_.tWTR);
    }
    const Cycle access_lat = req.write ? timing_.tCWL : timing_.tCL;
    Cycle data_start = col_cmd + access_lat;
    if (data_start < busFree_) {
        col_cmd += busFree_ - data_start;
        data_start = busFree_;
    }
    const Cycle data_end = data_start + timing_.tBurst;
    busFree_ = data_end;
    lastColCmd_ = col_cmd;
    lastWasWrite_ = req.write;
    if (req.write)
        lastWriteDataEnd_ = data_end;

    bank.preReady = std::max(bank.lastAct + timing_.tRAS,
                             req.write ? data_end + timing_.tWR
                                       : col_cmd + timing_.tRTP);
    if (policy_ == PagePolicy::Closed) {
        // Auto-precharge: the row closes as soon as it legally can;
        // the next access to this bank is a plain miss.
        bank.open = false;
        bank.preReady += timing_.tRP;
    }

    // Row-hit streak bookkeeping.
    if (outcome == RowOutcome::Hit && streakBank_ == gbank
        && streakRow_ == req.addr.row) {
        ++hitStreak_;
    } else {
        hitStreak_ = outcome == RowOutcome::Hit ? 1 : 0;
        streakBank_ = static_cast<std::uint32_t>(gbank);
        streakRow_ = req.addr.row;
    }

    switch (outcome) {
      case RowOutcome::Hit:
        ++stats_.rowHits;
        ++bankStats_[gbank].rowHits;
        break;
      case RowOutcome::Miss:
        ++stats_.rowMisses;
        ++bankStats_[gbank].rowMisses;
        break;
      case RowOutcome::Conflict:
        ++stats_.rowConflicts;
        ++bankStats_[gbank].rowConflicts;
        break;
    }
    busBusyCycles_ += timing_.tBurst;
    Cycle completion;
    if (req.write) {
        ++stats_.writes;
        stats_.writeBytes += timing_.burstBytes;
        completion = col_cmd; // posted: accepted at column command
    } else {
        ++stats_.reads;
        stats_.readBytes += timing_.burstBytes;
        completion = data_end;
        stats_.totalReadLatency += data_end - req.arrival;
        const Cycle queue_wait = queue_done - req.arrival;
        const Cycle refresh_wait = refresh_done - queue_done;
        const Cycle service = data_end - refresh_done;
        stats_.readQueueWait += queue_wait;
        stats_.readRefreshWait += refresh_wait;
        stats_.readServiceTime += service;
        readLatency_.sample(static_cast<double>(data_end
                                                - req.arrival));
        readQueueWaitHist_.sample(static_cast<double>(queue_wait));
        readServiceHist_.sample(
            static_cast<double>(refresh_wait + service));
        SIM_CHECK_EQ(queue_wait + refresh_wait + service,
                     data_end - req.arrival,
                     "read latency components are conserved");
    }
    stats_.lastCompletion = std::max(stats_.lastCompletion, data_end);
    SIM_CHECK_EQ(stats_.rowHits + stats_.rowMisses
                     + stats_.rowConflicts,
                 stats_.reads + stats_.writes,
                 "every access resolves to exactly one row outcome");
    return completion;
}

Cycle
Channel::serviceUntil(std::uint64_t seq)
{
    if (engine_ == DramEngine::EventSkip) {
        // Batch-drain: one completion-map probe up front (the target
        // may have been serviced out of order by an earlier drain),
        // then service straight through to the target and hand its
        // completion back directly — requests serviced on the way park
        // in completed_ without being re-probed every iteration.
        const auto done = completed_.find(seq);
        if (done != completed_.end()) {
            const Cycle completion = done->second;
            completed_.erase(done);
            return completion;
        }
        for (;;) {
            if (pending_.empty())
                panic("serviceUntil(%llu): request not pending",
                      static_cast<unsigned long long>(seq));
            const Cycle decision_time = std::max(
                pending_.front().arrival, lastColCmd_);
            const std::size_t idx = pickNext(decision_time);
            const Pending req = pending_[idx];
            pending_.erase(pending_.begin()
                           + static_cast<std::ptrdiff_t>(idx));
            const Cycle completion = serviceOne(req);
            if (req.seq == seq)
                return completion;
            completed_[req.seq] = completion;
        }
    }
    for (;;) {
        auto done = completed_.find(seq);
        if (done != completed_.end()) {
            const Cycle completion = done->second;
            completed_.erase(done);
            return completion;
        }
        if (pending_.empty())
            panic("serviceUntil(%llu): request not pending",
                  static_cast<unsigned long long>(seq));
        const Cycle decision_time = std::max(pending_.front().arrival,
                                             lastColCmd_);
        const std::size_t idx = pickNext(decision_time);
        const Pending req = pending_[idx];
        pending_.erase(pending_.begin()
                       + static_cast<std::ptrdiff_t>(idx));
        completed_[req.seq] = serviceOne(req);
    }
}

void
Channel::registerStats(obs::StatsRegistry& reg,
                       const std::string& prefix) const
{
    auto name = [&](const char* leaf) { return prefix + "." + leaf; };
    reg.addScalar(name("reads"), "read bursts serviced",
                  static_cast<double>(stats_.reads));
    reg.addScalar(name("writes"), "write bursts serviced",
                  static_cast<double>(stats_.writes));
    reg.addScalar(name("rowHits"), "row-buffer hits",
                  static_cast<double>(stats_.rowHits));
    reg.addScalar(name("rowMisses"), "row-buffer misses (bank closed)",
                  static_cast<double>(stats_.rowMisses));
    reg.addScalar(name("rowConflicts"),
                  "row-buffer conflicts (wrong row open)",
                  static_cast<double>(stats_.rowConflicts));
    reg.addScalar(name("refreshes"), "per-rank all-bank refreshes",
                  static_cast<double>(stats_.refreshes));
    reg.addScalar(name("readBytes"), "bytes read from DRAM",
                  static_cast<double>(stats_.readBytes));
    reg.addScalar(name("writeBytes"), "bytes written to DRAM",
                  static_cast<double>(stats_.writeBytes));
    reg.addScalar(name("totalReadLatency"),
                  "sum of read round-trip latencies (memory clocks)",
                  static_cast<double>(stats_.totalReadLatency));
    reg.addScalar(name("readQueueWait"),
                  "read latency spent queued (memory clocks)",
                  static_cast<double>(stats_.readQueueWait));
    reg.addScalar(name("readRefreshWait"),
                  "read latency spent waiting out refresh "
                  "(memory clocks)",
                  static_cast<double>(stats_.readRefreshWait));
    reg.addScalar(name("readServiceTime"),
                  "read latency spent in bank access + transfer "
                  "(memory clocks)",
                  static_cast<double>(stats_.readServiceTime));
    reg.addScalar(name("busBusyCycles"),
                  "memory clocks the data bus carried bursts",
                  static_cast<double>(busBusyCycles_));
    const bool any = stats_.reads + stats_.writes > 0;
    reg.addScalar(name("firstArrival"),
                  "arrival of the first request (memory clocks)",
                  any ? static_cast<double>(stats_.firstArrival) : 0.0);
    reg.addScalar(name("lastCompletion"),
                  "completion of the last burst (memory clocks)",
                  static_cast<double>(stats_.lastCompletion));
    for (std::size_t b = 0; b < bankStats_.size(); ++b) {
        const std::string elem = format("bank%zu", b);
        reg.addVectorElem(name("bank.rowHits"), elem,
                          "per-bank row-buffer hits",
                          static_cast<double>(bankStats_[b].rowHits));
        reg.addVectorElem(name("bank.rowMisses"), elem,
                          "per-bank row-buffer misses",
                          static_cast<double>(bankStats_[b].rowMisses));
        reg.addVectorElem(
            name("bank.rowConflicts"), elem,
            "per-bank row-buffer conflicts",
            static_cast<double>(bankStats_[b].rowConflicts));
    }
    reg.addDistribution(name("queueOccupancy"),
                        "request-queue depth at enqueue",
                        queueOccupancy_);
    reg.addDistribution(name("readLatency"),
                        "per-read round-trip latency (memory clocks)",
                        readLatency_);
    reg.addDistribution(name("readLatency.queueWait"),
                        "per-read queue-wait component "
                        "(memory clocks)",
                        readQueueWaitHist_);
    reg.addDistribution(name("readLatency.service"),
                        "per-read service component, refresh included "
                        "(memory clocks)",
                        readServiceHist_);
    reg.addFormula(name("rowHitRate"),
                   "rowHits / (rowHits + rowMisses + rowConflicts)",
                   {{{name("rowHits"), 1.0}},
                    {{name("rowHits"), 1.0},
                     {name("rowMisses"), 1.0},
                     {name("rowConflicts"), 1.0}},
                    1.0});
    reg.addFormula(name("avgReadLatency"),
                   "mean read round-trip latency (memory clocks)",
                   {{{name("totalReadLatency"), 1.0}},
                    {{name("reads"), 1.0}},
                    1.0});
    reg.addFormula(name("busUtilization"),
                   "busBusyCycles / (lastCompletion - firstArrival)",
                   {{{name("busBusyCycles"), 1.0}},
                    {{name("lastCompletion"), 1.0},
                     {name("firstArrival"), -1.0}},
                    1.0});
}

void
Channel::drainAll()
{
    while (!pending_.empty()) {
        const Cycle decision_time = std::max(pending_.front().arrival,
                                             lastColCmd_);
        const std::size_t idx = pickNext(decision_time);
        const Pending req = pending_[idx];
        pending_.erase(pending_.begin()
                       + static_cast<std::ptrdiff_t>(idx));
        completed_[req.seq] = serviceOne(req);
    }
}

} // namespace scalesim::dram
