/**
 * @file
 * Chrome trace-event (Perfetto-compatible) timeline builder. Collects
 * duration spans ("X" events), counter tracks ("C" events) and
 * process/thread metadata, then serializes the JSON object format
 * ({"traceEvents": [...]}) that chrome://tracing and ui.perfetto.dev
 * load directly. Timestamps are in trace microseconds; the simulator
 * maps one accelerator cycle to one microsecond and records the
 * convention in the trace's `otherData`.
 */

#ifndef SCALESIM_OBS_TRACE_HH
#define SCALESIM_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace scalesim::obs
{

/** Builds an in-memory event list; write() serializes it. */
class TraceBuilder
{
  public:
    /** Name a process track (pid row in the viewer). */
    void setProcessName(std::uint32_t pid, std::string_view name);

    /** Name a thread track within a process. */
    void setThreadName(std::uint32_t pid, std::uint32_t tid,
                       std::string_view name);

    /**
     * Add a complete-duration span. `args` are optional key/value
     * details shown when the span is selected.
     */
    void addSpan(std::uint32_t pid, std::uint32_t tid,
                 std::string_view name, std::string_view category,
                 std::uint64_t ts, std::uint64_t dur,
                 std::vector<std::pair<std::string, double>> args = {});

    /** Add one sample of a counter track. */
    void addCounter(std::uint32_t pid, std::string_view track,
                    std::uint64_t ts, std::string_view series,
                    double value);

    /** Free-form metadata recorded under the trace's `otherData`. */
    void addMetadata(std::string_view key, std::string_view value);

    std::size_t eventCount() const { return events_.size(); }

    /** Serialize as a Chrome trace JSON object. */
    void write(std::ostream& out) const;

  private:
    struct Event
    {
        char phase;             ///< 'X', 'C', or 'M'
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        std::string name;
        std::string category;
        std::uint64_t ts = 0;
        std::uint64_t dur = 0;
        /** Span details, counter series, or metadata payload. */
        std::vector<std::pair<std::string, double>> args;
        std::string stringArg; ///< metadata name payload
    };

    std::vector<Event> events_;
    std::vector<std::pair<std::string, std::string>> otherData_;
};

} // namespace scalesim::obs

#endif // SCALESIM_OBS_TRACE_HH
