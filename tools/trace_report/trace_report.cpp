/**
 * @file
 * Bottleneck-attribution report over the simulator's machine-readable
 * outputs:
 *
 *   trace_report run.json [--top N] [--series INTERVAL_SERIES.json]
 *
 * Reads the full run report (scalesim_cli --json), validates that every
 * layer's CPI stack conserves cycles (buckets sum to totalCycles), and
 * prints the run-level CPI stack plus the top-N layers ranked by
 * repetition-weighted stall cycles with their dominant stall class.
 * With --series it also summarizes the interval time-series (--interval
 * output), reporting the most stall-heavy window.
 *
 * Exit codes: 0 clean, 1 usage/IO/JSON error, 2 CPI-stack conservation
 * violation — CI runs it against fresh artifacts as a cross-check of
 * the in-simulator `cpi.conservation` auditor law.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/cpi.hpp"
#include "obs/json_read.hpp"

using scalesim::obs::CpiStack;
using scalesim::obs::JsonValue;

namespace
{

struct LayerRow
{
    std::string name;
    std::uint64_t reps = 1;
    std::uint64_t totalCycles = 0; ///< one instance
    CpiStack cpi;                  ///< one instance

    std::uint64_t weightedTotal() const { return totalCycles * reps; }
    std::uint64_t
    weightedStall() const
    {
        // Everything that is not useful compute (matrix or vector).
        return (cpi.total() - cpi.compute - cpi.vectorUnit) * reps;
    }
};

CpiStack
readCpiStack(const JsonValue& obj)
{
    CpiStack cpi;
    cpi.compute = static_cast<std::uint64_t>(obj.numberAt("compute"));
    cpi.vectorUnit = static_cast<std::uint64_t>(obj.numberAt("vector"));
    cpi.drain = static_cast<std::uint64_t>(obj.numberAt("drain"));
    cpi.bandwidth =
        static_cast<std::uint64_t>(obj.numberAt("bandwidth"));
    cpi.prefetchMiss =
        static_cast<std::uint64_t>(obj.numberAt("prefetchMiss"));
    cpi.l2Wait = static_cast<std::uint64_t>(obj.numberAt("l2Wait"));
    cpi.dramQueue =
        static_cast<std::uint64_t>(obj.numberAt("dramQueue"));
    cpi.dramService =
        static_cast<std::uint64_t>(obj.numberAt("dramService"));
    cpi.refresh = static_cast<std::uint64_t>(obj.numberAt("refresh"));
    return cpi;
}

/** Stall bucket (index into CpiStack) with the most cycles. */
unsigned
dominantStall(const CpiStack& cpi)
{
    unsigned best = 2; // first non-compute bucket (drain)
    for (unsigned i = 2; i < CpiStack::kBucketCount; ++i) {
        if (cpi.bucketValue(i) > cpi.bucketValue(best))
            best = i;
    }
    return best;
}

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part)
            / static_cast<double>(whole)
                 : 0.0;
}

/**
 * Check one CPI stack against its layer/run cycle count; prints and
 * counts a violation on mismatch (the file-level "total" field is
 * checked too, so a hand-edited report cannot sneak past).
 */
bool
checkConservation(const char* scope, const CpiStack& cpi,
                  std::uint64_t total_field, std::uint64_t cycles)
{
    if (cpi.total() == cycles && total_field == cycles)
        return true;
    std::fprintf(stderr,
                 "trace_report: CPI-stack conservation violated in %s:"
                 " buckets sum to %" PRIu64 ", total field %" PRIu64
                 ", totalCycles %" PRIu64 "\n",
                 scope, cpi.total(), total_field, cycles);
    return false;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_report run.json [--top N]"
                 " [--series INTERVAL_SERIES.json]\n");
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string run_path;
    std::string series_path;
    std::uint64_t top_n = 5;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            top_n = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--series" && i + 1 < argc) {
            series_path = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (run_path.empty() && !arg.empty() && arg[0] != '-') {
            run_path = arg;
        } else {
            return usage();
        }
    }
    if (run_path.empty())
        return usage();

    JsonValue run;
    if (!scalesim::obs::parseJsonFile(run_path, run)) {
        std::fprintf(stderr, "trace_report: cannot parse %s\n",
                     run_path.c_str());
        return 1;
    }
    const JsonValue* totals = run.find("totals");
    const JsonValue* layers = run.find("layers");
    if (!totals || !layers || layers->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr,
                     "trace_report: %s is not a run report "
                     "(missing totals/layers)\n",
                     run_path.c_str());
        return 1;
    }

    bool conserved = true;
    std::vector<LayerRow> rows;
    rows.reserve(layers->items.size());
    for (const JsonValue& l : layers->items) {
        LayerRow row;
        row.name = l.stringAt("name", "<unnamed>");
        row.reps = static_cast<std::uint64_t>(
            l.numberAt("repetitions", 1.0));
        row.totalCycles =
            static_cast<std::uint64_t>(l.numberAt("totalCycles"));
        const JsonValue* cpi = l.find("cpiStack");
        if (!cpi) {
            std::fprintf(stderr,
                         "trace_report: layer %s has no cpiStack "
                         "(report predates cycle accounting?)\n",
                         row.name.c_str());
            return 1;
        }
        row.cpi = readCpiStack(*cpi);
        conserved = checkConservation(
                        row.name.c_str(), row.cpi,
                        static_cast<std::uint64_t>(
                            cpi->numberAt("total")),
                        row.totalCycles)
            && conserved;
        rows.push_back(std::move(row));
    }

    const std::uint64_t run_cycles =
        static_cast<std::uint64_t>(totals->numberAt("totalCycles"));
    CpiStack run_cpi;
    if (const JsonValue* cpi = totals->find("cpiStack")) {
        run_cpi = readCpiStack(*cpi);
        conserved = checkConservation(
                        "totals", run_cpi,
                        static_cast<std::uint64_t>(
                            cpi->numberAt("total")),
                        run_cycles)
            && conserved;
    }

    std::printf("run: %s on %s — %" PRIu64 " cycles, %zu layers\n\n",
                run.stringAt("runName", "?").c_str(),
                run.stringAt("workload", "?").c_str(), run_cycles,
                rows.size());

    std::printf("CPI stack (where every cycle went):\n");
    for (unsigned i = 0; i < CpiStack::kBucketCount; ++i) {
        const std::uint64_t v = run_cpi.bucketValue(i);
        if (v == 0)
            continue;
        std::printf("  %-14s %14" PRIu64 "  %6.2f%%\n",
                    CpiStack::bucketName(i), v, pct(v, run_cycles));
    }

    std::sort(rows.begin(), rows.end(),
              [](const LayerRow& a, const LayerRow& b) {
                  if (a.weightedStall() != b.weightedStall())
                      return a.weightedStall() > b.weightedStall();
                  return a.name < b.name;
              });
    std::printf("\ntop layers by stall cycles (rep-weighted):\n");
    std::printf("  %-24s %14s %8s  %s\n", "layer", "stallCycles",
                "of run", "dominant cause");
    const std::uint64_t shown =
        std::min<std::uint64_t>(top_n, rows.size());
    for (std::uint64_t i = 0; i < shown; ++i) {
        const LayerRow& r = rows[i];
        const unsigned cause = dominantStall(r.cpi);
        std::printf("  %-24s %14" PRIu64 " %7.2f%%  %s (%.1f%% of "
                    "layer)\n",
                    r.name.c_str(), r.weightedStall(),
                    pct(r.weightedStall(), run_cycles),
                    CpiStack::bucketName(cause),
                    pct(r.cpi.bucketValue(cause), r.cpi.total()));
    }

    if (!series_path.empty()) {
        JsonValue series;
        if (!scalesim::obs::parseJsonFile(series_path, series)) {
            std::fprintf(stderr, "trace_report: cannot parse %s\n",
                         series_path.c_str());
            return 1;
        }
        const JsonValue* series_rows = series.find("rows");
        if (!series_rows
            || series_rows->kind != JsonValue::Kind::Array) {
            std::fprintf(stderr,
                         "trace_report: %s is not an interval series\n",
                         series_path.c_str());
            return 1;
        }
        // The most stall-heavy window: highest non-compute share of
        // the window's cycle delta.
        double worst_share = -1.0;
        std::uint64_t worst_cycle = 0;
        for (const JsonValue& r : series_rows->items) {
            const JsonValue* stats = r.find("stats");
            if (!stats)
                continue;
            const double total =
                stats->numberAt("sim.cpistack::compute")
                + stats->numberAt("sim.cpistack::vector");
            double stall = 0.0;
            for (unsigned i = 2; i < CpiStack::kBucketCount; ++i) {
                stall += stats->numberAt(
                    std::string("sim.cpistack::")
                    + CpiStack::bucketName(i));
            }
            const double window = total + stall;
            const double share = window > 0.0 ? stall / window : 0.0;
            if (share > worst_share) {
                worst_share = share;
                worst_cycle =
                    static_cast<std::uint64_t>(r.numberAt("cycle"));
            }
        }
        std::printf("\nintervals: %zu samples every %" PRIu64
                    " cycles; most stalled window ends at cycle "
                    "%" PRIu64 " (%.1f%% stalled)\n",
                    series_rows->items.size(),
                    static_cast<std::uint64_t>(
                        series.numberAt("interval")),
                    worst_cycle, 100.0 * std::max(0.0, worst_share));
    }

    if (!conserved) {
        std::fprintf(stderr,
                     "trace_report: CPI-stack conservation FAILED\n");
        return 2;
    }
    std::printf("\nCPI-stack conservation: OK\n");
    return 0;
}
