#include "common/csv.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/log.hpp"

namespace scalesim
{

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
               text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
               text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

std::vector<std::string>
splitCsvLine(std::string_view line)
{
    std::vector<std::string> cells;
    std::size_t start = 0;
    while (start <= line.size()) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string_view::npos) {
            cells.push_back(trim(line.substr(start)));
            break;
        }
        cells.push_back(trim(line.substr(start, comma - start)));
        start = comma + 1;
    }
    // SCALE-Sim topology rows often end with a trailing comma.
    if (!cells.empty() && cells.back().empty())
        cells.pop_back();
    return cells;
}

namespace
{

// Canonical form for header matching: lowercase, no spaces/underscores.
std::string
canonical(std::string_view name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == ' ' || c == '_' || c == '\t')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

} // namespace

CsvTable
CsvTable::parse(std::istream& in)
{
    CsvTable table;
    std::string line;
    bool have_header = false;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        auto cells = splitCsvLine(trimmed);
        if (cells.empty())
            continue;
        if (!have_header) {
            table.header_ = std::move(cells);
            have_header = true;
        } else {
            cells.resize(std::max(cells.size(), table.header_.size()));
            table.rows_.push_back(std::move(cells));
        }
    }
    return table;
}

CsvTable
CsvTable::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open CSV file: %s", path.c_str());
    return parse(in);
}

int
CsvTable::findColumn(std::string_view name) const
{
    const std::string want = canonical(name);
    for (std::size_t i = 0; i < header_.size(); ++i) {
        if (canonical(header_[i]) == want)
            return static_cast<int>(i);
    }
    return -1;
}

std::string
CsvTable::cell(std::size_t row, std::string_view column) const
{
    int col = findColumn(column);
    if (col < 0 || row >= rows_.size())
        return "";
    const auto& cells = rows_[row];
    if (static_cast<std::size_t>(col) >= cells.size())
        return "";
    return cells[static_cast<std::size_t>(col)];
}

void
CsvWriter::writeRow(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ",";
        out_ << cells[i];
    }
    out_ << "\n";
}

} // namespace scalesim
