/**
 * @file
 * Ablation: the shared L2 scratchpad (§III-B). Runs spatially
 * partitioned layers on a multi-core grid with and without the shared
 * L2 and reports the DRAM traffic the deduplication removes, the L2
 * hit rate, and the makespan effect, across grid sizes and dataflows.
 */

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "multicore/trace_sim.hpp"

using namespace scalesim;
using namespace scalesim::multicore;

int
main()
{
    setQuiet(true);
    std::printf("=== Ablation: shared L2 vs private-L1-only (§III-B) "
                "===\n");
    const LayerSpec layers[] = {
        LayerSpec::gemm("mlp_fc1", 197, 3072, 768),
        LayerSpec::gemm("attn_qkv", 197, 2304, 768),
        LayerSpec::conv("conv3x3", 28, 28, 3, 3, 128, 256, 1),
    };
    benchutil::Table table({10, 6, 6, 14, 14, 10, 10});
    table.row({"layer", "grid", "df", "dram(no L2)", "dram(L2)",
               "saved", "L2 hit"});
    table.rule();
    bool l2_always_saves = true;
    for (const auto& layer : layers) {
        for (std::uint64_t grid : {2ull, 4ull}) {
            for (auto df : {Dataflow::OutputStationary,
                            Dataflow::WeightStationary}) {
                MultiCoreTraceConfig cfg;
                cfg.pr = cfg.pc = grid;
                cfg.arrayRows = cfg.arrayCols = 16;
                cfg.dataflow = df;
                cfg.l1.ifmapWords = 16 * 1024;
                cfg.l1.filterWords = 16 * 1024;
                MultiCoreTraceConfig no_l2 = cfg;
                no_l2.useL2 = false;
                MultiCoreTraceSimulator with(cfg);
                MultiCoreTraceSimulator without(no_l2);
                const auto w = with.runLayer(layer);
                const auto wo = without.runLayer(layer);
                const double saved = 1.0
                    - static_cast<double>(w.dramReadWords)
                        / std::max<std::uint64_t>(1, wo.dramReadWords);
                if (w.dramReadWords > wo.dramReadWords)
                    l2_always_saves = false;
                table.row({layer.name, format("%llux%llu",
                                              static_cast<unsigned long long>(grid),
                                              static_cast<unsigned long long>(grid)),
                           toString(df),
                           benchutil::num(wo.dramReadWords),
                           benchutil::num(w.dramReadWords),
                           benchutil::fmt("%.0f%%", 100.0 * saved),
                           benchutil::fmt("%.2f", w.l2.hitRate())});
            }
        }
    }
    table.rule();
    std::printf("shared L2 never increases DRAM read traffic: %s\n",
                l2_always_saves ? "yes" : "NO");
    return 0;
}
