# Empty dependencies file for ablation_shared_l2.
# This may be replaced when dependencies are built.
