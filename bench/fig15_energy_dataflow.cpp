/**
 * @file
 * Reproduces Fig. 15: total energy under OS/WS/IS dataflows across
 * array sizes (8x8 .. 128x128) for three workloads. The paper's
 * findings to match in shape: OS wins almost everywhere; between WS
 * and IS, WS is preferable at small arrays and IS at large arrays.
 */

#include <algorithm>

#include "bench_util.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/simulator.hpp"

using namespace scalesim;

namespace
{

double
energyMj(const Topology& topo, Dataflow df, std::uint32_t array)
{
    SimConfig cfg;
    cfg.arrayRows = array;
    cfg.arrayCols = array;
    cfg.dataflow = df;
    cfg.mode = SimMode::Analytical;
    cfg.energy.enabled = true;
    // TPU-like on-chip buffers (the paper's energy studies assume the
    // working set is on-chip; tiny SRAMs would make DRAM spill energy
    // dominate instead of the dataflow's action counts).
    cfg.memory.ifmapSramKb = 6144;
    cfg.memory.filterSramKb = 6144;
    cfg.memory.ofmapSramKb = 2048;
    core::Simulator sim(cfg);
    return sim.run(topo).totalEnergy.onChipMj();
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("=== Fig. 15: energy (mJ) by dataflow and array size "
                "===\n");
    const char* names[] = {"alexnet", "resnet18", "vit_small"};
    int os_best = 0;
    int cells = 0;
    int ws_better_small = 0;
    int is_better_large = 0;
    for (const char* name : names) {
        const Topology topo = workloads::byName(name);
        std::printf("--- %s ---\n", name);
        benchutil::Table table({10, 12, 12, 12, 10});
        table.row({"array", "os", "ws", "is", "best"});
        table.rule();
        for (std::uint32_t array : {8u, 16u, 32u, 64u, 128u}) {
            const double os = energyMj(topo, Dataflow::OutputStationary,
                                       array);
            const double ws = energyMj(topo, Dataflow::WeightStationary,
                                       array);
            const double is = energyMj(topo, Dataflow::InputStationary,
                                       array);
            const double min_e = std::min({os, ws, is});
            const char* best = os <= ws && os <= is
                ? "os" : (ws <= is ? "ws" : "is");
            // At large arrays static energy dominates and the
            // dataflows converge; count OS as winning within 0.5%.
            const bool os_wins = os <= min_e * 1.005;
            table.row({format("%ux%u", array, array),
                       benchutil::fmt("%.2f", os),
                       benchutil::fmt("%.2f", ws),
                       benchutil::fmt("%.2f", is), best});
            ++cells;
            if (os_wins)
                ++os_best;
            if (array <= 16 && ws <= is)
                ++ws_better_small;
            if (array >= 64 && is <= ws)
                ++is_better_large;
        }
        table.rule();
    }
    std::printf("OS lowest energy (within 0.5%%) in %d/%d cells "
                "(paper: 'OS outperforms the other two in almost every "
                "case')\n",
                os_best, cells);
    std::printf("WS <= IS at small arrays in %d/6 cells; IS <= WS at "
                "large arrays in %d/6 cells (paper: WS preferable "
                "small, IS preferable large)\n",
                ws_better_small, is_better_large);
    return 0;
}
