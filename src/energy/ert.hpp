/**
 * @file
 * Energy reference table (ERT), the Accelergy-substitute primitive
 * energy database. Per-action energies in picojoules for the
 * components of the paper's baseline template (§VII-B): per-PE MAC and
 * three register-file scratchpads, three smart-buffer SRAMs with
 * distinct random/repeated access energies (§VII-C), NoC links, and
 * main memory. Default values follow published 65 nm numbers of the
 * Eyeriss/Accelergy line of work.
 */

#ifndef SCALESIM_ENERGY_ERT_HH
#define SCALESIM_ENERGY_ERT_HH

#include <string>
#include <string_view>

namespace scalesim::energy
{

/** Per-action energies (pJ) and static power for one technology. */
struct Ert
{
    std::string node = "65nm";

    // MAC unit action types (§VII-E), 8-bit operands.
    double macRandom = 0.56;   ///< new operands, full switching
    double macConstant = 0.12; ///< clocked but operands unchanged
    double macGated = 0.012;   ///< clock-gated, leakage only

    // PE-local register-file scratchpads (8-bit entries).
    double spadRead = 0.06;
    double spadWrite = 0.08;

    /** One vector-unit lane-operation (activation/softmax step). */
    double vectorOpPj = 0.35;

    // Global (smart buffer) SRAM action types (§VII-C).
    double sramReadRandom = 6.00;
    double sramReadRepeat = 2.40;
    double sramWriteRandom = 6.60;
    double sramWriteRepeat = 2.70;
    double sramIdle = 0.004; ///< per idle port-cycle

    // Interconnect and main memory. NoC energy is per word per unit
    // array dimension: delivering a word across an R x R array costs
    // energy proportional to the wire length it traverses, so the
    // model scales this by (array dimension / 8).
    double nocPerWordPerDim8 = 0.30;
    /** Flat per-word DRAM energy (bandwidth-model runs, §V off). */
    double dramPerWord = 160.0;
    // Command-granular DRAM energy, used when the detailed DRAM model
    // supplies activate/burst/refresh counts (row locality matters).
    double dramActPj = 3000.0;       ///< ACT + PRE pair
    double dramReadBurstPj = 6400.0; ///< one read burst (array + IO)
    double dramWriteBurstPj = 6600.0;
    double dramRefreshPj = 25000.0;  ///< one all-bank refresh

    /**
     * Clock-tree / register infrastructure energy per PE per running
     * cycle. Burned whenever the core clock toggles, independent of
     * utilization; eliminated by clock gating (the idle state).
     */
    double peClockPerCycle = 0.50;
    /** True leakage per PE per cycle (remains under clock gating). */
    double peLeakPerCycle = 0.062;
    /** Leakage per KB of on-chip SRAM, pJ per cycle. */
    double sramStaticPerKbCycle = 0.0018;
    /** Fraction of leakage retained under power gating. */
    double powerGateRetention = 0.46;

    /** 65 nm reference table (default). */
    static Ert node65nm();
    /** Scaled tables for other nodes: "45nm", "28nm", "16nm". */
    static Ert forNode(std::string_view node);
};

} // namespace scalesim::energy

#endif // SCALESIM_ENERGY_ERT_HH
