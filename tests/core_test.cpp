/**
 * @file
 * Integration tests: the end-to-end Simulator with every v3 feature
 * combination — sparsity, DRAM, layout, energy — plus the report
 * writers, on small synthetic topologies and real workload prefixes.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/workloads.hpp"
#include "core/dse.hpp"
#include "core/simulator.hpp"

using namespace scalesim;
using namespace scalesim::core;

namespace
{

Topology
tinyTopology()
{
    Topology topo;
    topo.name = "tiny";
    topo.layers.push_back(LayerSpec::conv("conv", 14, 14, 3, 3, 16, 32,
                                          1));
    topo.layers.push_back(LayerSpec::gemm("fc", 4, 64, 128));
    return topo;
}

SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.arrayRows = 16;
    cfg.arrayCols = 16;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.mode = SimMode::Trace;
    return cfg;
}

} // namespace

TEST(Simulator, PlainRunMatchesAnalyticalCycles)
{
    SimConfig cfg = baseConfig();
    Simulator sim(cfg);
    const Topology topo = tinyTopology();
    const RunResult run = sim.run(topo);
    ASSERT_EQ(run.layers.size(), 2u);
    for (std::size_t i = 0; i < topo.layers.size(); ++i) {
        const systolic::FoldGrid grid(topo.layers[i].toGemm(),
                                      cfg.dataflow, cfg.arrayRows,
                                      cfg.arrayCols);
        EXPECT_EQ(run.layers[i].computeCycles, grid.totalCycles());
        EXPECT_GE(run.layers[i].totalCycles,
                  run.layers[i].computeCycles);
    }
    EXPECT_EQ(run.totalCycles, run.computeCycles + run.stallCycles);
}

TEST(Simulator, AnalyticalAndTraceModesAgreeOnCycles)
{
    SimConfig trace_cfg = baseConfig();
    trace_cfg.energy.enabled = true;
    SimConfig analytical_cfg = trace_cfg;
    analytical_cfg.mode = SimMode::Analytical;
    Simulator trace_sim(trace_cfg);
    Simulator analytical_sim(analytical_cfg);
    const Topology topo = tinyTopology();
    const RunResult t = trace_sim.run(topo);
    const RunResult a = analytical_sim.run(topo);
    EXPECT_EQ(t.computeCycles, a.computeCycles);
    EXPECT_EQ(t.totalCycles, a.totalCycles);
    // MAC counts agree exactly; only the random/repeat split differs.
    for (std::size_t i = 0; i < t.layers.size(); ++i) {
        EXPECT_EQ(t.layers[i].actions.macRandom,
                  a.layers[i].actions.macRandom);
    }
}

TEST(Simulator, SparsityShrinksCyclesAndStorage)
{
    SimConfig cfg = baseConfig();
    cfg.sparsity.enabled = true;
    Simulator sim(cfg);

    Topology topo = tinyTopology();
    topo.layers[0].sparseN = 1;
    topo.layers[0].sparseM = 4;
    const RunResult sparse_run = sim.run(topo);

    SimConfig dense_cfg = baseConfig();
    Simulator dense_sim(dense_cfg);
    const RunResult dense_run = dense_sim.run(tinyTopology());

    EXPECT_LT(sparse_run.layers[0].totalCycles,
              dense_run.layers[0].totalCycles);
    ASSERT_TRUE(sparse_run.layers[0].sparse.has_value());
    const auto& report = *sparse_run.layers[0].sparse;
    EXPECT_LT(report.newFilterBits, report.originalFilterBits);
    EXPECT_EQ(report.compressedK, report.denseK / 4);
    // The dense second layer is untouched.
    EXPECT_FALSE(sparse_run.layers[1].sparse.has_value());
    EXPECT_EQ(sparse_run.layers[1].totalCycles,
              dense_run.layers[1].totalCycles);
}

TEST(Simulator, DramModelAddsRealisticStalls)
{
    SimConfig ideal = baseConfig();
    ideal.memory.bandwidthWordsPerCycle = 1e9;
    SimConfig with_dram = baseConfig();
    with_dram.dram.enabled = true;
    with_dram.dram.tech = "DDR4_2400";
    with_dram.dram.channels = 1;
    Simulator ideal_sim(ideal);
    Simulator dram_sim(with_dram);
    const Topology topo = tinyTopology();
    const RunResult i = ideal_sim.run(topo);
    const RunResult d = dram_sim.run(topo);
    EXPECT_EQ(i.computeCycles, d.computeCycles);
    EXPECT_GE(d.stallCycles, i.stallCycles);
    EXPECT_GT(d.dramStats.reads + d.dramStats.writes, 0u);
    EXPECT_GT(d.dramStats.rowHits + d.dramStats.rowMisses
                  + d.dramStats.rowConflicts, 0u);
}

TEST(Simulator, MoreDramChannelsNeverSlower)
{
    auto total_for = [&](std::uint32_t channels) {
        SimConfig cfg = baseConfig();
        cfg.dram.enabled = true;
        cfg.dram.channels = channels;
        Simulator sim(cfg);
        return sim.run(tinyTopology()).totalCycles;
    };
    EXPECT_LE(total_for(4), total_for(1));
}

TEST(Simulator, LayoutSlowdownStretchesCompute)
{
    SimConfig no_layout = baseConfig();
    SimConfig with_layout = baseConfig();
    with_layout.layout.enabled = true;
    with_layout.layout.banks = 2;
    with_layout.layout.portsPerBank = 1;
    with_layout.layout.onChipBandwidth = 32;
    Simulator plain(no_layout);
    Simulator laid_out(with_layout);
    const Topology topo = tinyTopology();
    const RunResult p = plain.run(topo);
    const RunResult l = laid_out.run(topo);
    EXPECT_GE(l.layers[0].layoutSlowdown, 1.0);
    EXPECT_GE(l.computeCycles, p.computeCycles);
}

TEST(Simulator, EnergyAccountingEndToEnd)
{
    SimConfig cfg = baseConfig();
    cfg.energy.enabled = true;
    Simulator sim(cfg);
    const RunResult run = sim.run(tinyTopology());
    EXPECT_GT(run.totalEnergy.totalPj(), 0.0);
    EXPECT_GT(run.avgPowerW, 0.0);
    EXPECT_GT(run.edp, 0.0);
    for (const auto& layer : run.layers) {
        EXPECT_GT(layer.energyBreakdown.totalPj(), 0.0);
        EXPECT_GT(layer.powerW, 0.0);
        // DRAM energy follows the measured traffic.
        EXPECT_EQ(layer.actions.dramReadWords,
                  layer.timing.dramReadWords);
    }
}

TEST(Simulator, AllFeaturesTogether)
{
    SimConfig cfg = baseConfig();
    cfg.sparsity.enabled = true;
    cfg.dram.enabled = true;
    cfg.layout.enabled = true;
    cfg.energy.enabled = true;
    Simulator sim(cfg);
    Topology topo = tinyTopology();
    topo.layers[0].sparseN = 2;
    topo.layers[0].sparseM = 4;
    const RunResult run = sim.run(topo);
    EXPECT_GT(run.totalCycles, 0u);
    EXPECT_GT(run.totalEnergy.totalPj(), 0.0);
    EXPECT_TRUE(run.layers[0].sparse.has_value());
    EXPECT_GE(run.layers[0].layoutSlowdown, 1.0);
}

TEST(Simulator, RepetitionsScaleTotals)
{
    SimConfig cfg = baseConfig();
    Topology once;
    once.name = "once";
    once.layers.push_back(LayerSpec::gemm("g", 32, 32, 32));
    Topology thrice = once;
    thrice.layers[0].repetitions = 3;
    Simulator sim_a(cfg);
    Simulator sim_b(cfg);
    const RunResult a = sim_a.run(once);
    const RunResult b = sim_b.run(thrice);
    EXPECT_EQ(b.totalCycles, 3 * a.totalCycles);
}

TEST(Simulator, ReportsAreWellFormedCsv)
{
    SimConfig cfg = baseConfig();
    cfg.sparsity.enabled = true;
    cfg.energy.enabled = true;
    Simulator sim(cfg);
    Topology topo = tinyTopology();
    topo.layers[0].sparseN = 1;
    topo.layers[0].sparseM = 4;
    const RunResult run = sim.run(topo);

    auto check = [&](auto writer, std::size_t min_rows) {
        std::ostringstream out;
        (run.*writer)(out);
        std::istringstream in(out.str());
        const CsvTable table = CsvTable::parse(in);
        EXPECT_GE(table.numRows(), min_rows);
        EXPECT_FALSE(table.header().empty());
    };
    check(&RunResult::writeComputeReport, 2u);
    check(&RunResult::writeBandwidthReport, 2u);
    check(&RunResult::writeSparseReport, 1u);
    check(&RunResult::writeEnergyReport, 3u);
}

TEST(Simulator, RealWorkloadPrefixRuns)
{
    SimConfig cfg = baseConfig();
    cfg.arrayRows = 32;
    cfg.arrayCols = 32;
    cfg.energy.enabled = true;
    cfg.mode = SimMode::Analytical;
    Simulator sim(cfg);
    const RunResult run = sim.run(workloads::resnet18Prefix(6));
    EXPECT_EQ(run.layers.size(), 6u);
    EXPECT_GT(run.totalCycles, 0u);
    for (const auto& layer : run.layers) {
        EXPECT_GT(layer.utilization, 0.0);
        EXPECT_LE(layer.utilization, 1.0);
    }
}

TEST(Simulator, DataflowsProduceDifferentCycleProfiles)
{
    const Topology topo = tinyTopology();
    std::set<Cycle> totals;
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        SimConfig cfg = baseConfig();
        cfg.dataflow = df;
        Simulator sim(cfg);
        totals.insert(sim.run(topo).computeCycles);
    }
    EXPECT_GT(totals.size(), 1u);
}

TEST(Simulator, ConfigRoundTripFromIni)
{
    IniFile ini = IniFile::parseString(
        "[architecture]\nArrayHeight = 8\nArrayWidth = 8\n"
        "Dataflow = os\n[energy]\nEnergyModel = true\n");
    Simulator sim(SimConfig::fromIni(ini));
    const RunResult run = sim.run(tinyTopology());
    EXPECT_GT(run.totalEnergy.totalPj(), 0.0);
}

TEST(Simulator, PowerTraceCoversEveryLayerInstance)
{
    SimConfig cfg = baseConfig();
    cfg.energy.enabled = true;
    Simulator sim(cfg);
    Topology topo = tinyTopology();
    topo.layers[1].repetitions = 3;
    const RunResult run = sim.run(topo);
    // 1 instance of layer 0 + 3 of layer 1.
    ASSERT_EQ(run.powerTrace.size(), 4u);
    Cycle total = 0;
    for (const auto& sample : run.powerTrace) {
        EXPECT_GT(sample.powerW, 0.0);
        EXPECT_GT(sample.cycles, 0u);
        total += sample.cycles;
    }
    EXPECT_EQ(total, run.totalCycles);
    // Power varies across layers (instantaneous, not flat).
    EXPECT_NE(run.powerTrace.front().powerW,
              run.powerTrace.back().powerW);

    std::ostringstream out;
    run.writePowerReport(out);
    std::istringstream in(out.str());
    const CsvTable table = CsvTable::parse(in);
    EXPECT_EQ(table.numRows(), 5u); // 4 epochs + AVG row
}

TEST(Simulator, VectorTailSerializedAfterMatrixPart)
{
    SimConfig cfg = baseConfig();
    cfg.simdLanes = 16;
    cfg.energy.enabled = true;
    Topology with_tail;
    with_tail.name = "t";
    with_tail.layers.push_back(
        LayerSpec::gemm("g", 64, 64, 32).withTail(
            VectorTail::Softmax));
    Topology without = with_tail;
    without.layers[0].tail = VectorTail::None;

    Simulator sim_a(cfg);
    Simulator sim_b(cfg);
    const RunResult a = sim_a.run(with_tail);
    const RunResult b = sim_b.run(without);
    // Softmax over 64*64 outputs at 16 lanes, 3 passes, 1 cyc/op.
    EXPECT_EQ(a.layers[0].simdCycles, 64u * 64u / 16u * 3u);
    EXPECT_EQ(a.layers[0].totalCycles,
              b.layers[0].totalCycles + a.layers[0].simdCycles);
    // The tail costs energy too.
    EXPECT_GT(a.layers[0].actions.vectorOps, 0u);
    EXPECT_GT(a.totalEnergy.totalPj(), b.totalEnergy.totalPj());
}

TEST(Simulator, SimdKnobsScaleTailCycles)
{
    Topology topo;
    topo.name = "t";
    topo.layers.push_back(
        LayerSpec::gemm("g", 32, 32, 32).withTail(
            VectorTail::Activation));
    SimConfig wide = baseConfig();
    wide.simdLanes = 64;
    SimConfig narrow = baseConfig();
    narrow.simdLanes = 8;
    narrow.simdLatencyPerOp = 2;
    Simulator sim_w(wide);
    Simulator sim_n(narrow);
    const auto w = sim_w.run(topo);
    const auto n = sim_n.run(topo);
    EXPECT_EQ(w.layers[0].simdCycles, 32u * 32u / 64u);
    EXPECT_EQ(n.layers[0].simdCycles, 32u * 32u / 8u * 2u);
}

TEST(Simulator, SparseMetadataCostsFilterEnergy)
{
    SimConfig cfg = baseConfig();
    cfg.sparsity.enabled = true;
    cfg.energy.enabled = true;
    cfg.mode = SimMode::Analytical;
    Topology topo;
    topo.name = "t";
    LayerSpec layer = LayerSpec::gemm("g", 64, 64, 256);
    layer.sparseN = 1;
    layer.sparseM = 4;
    topo.layers.push_back(layer);
    Simulator sim(cfg);
    const RunResult run = sim.run(topo);
    ASSERT_TRUE(run.layers[0].sparse.has_value());
    // Metadata reads were added on top of the compressed filter reads.
    const systolic::FoldGrid grid(run.layers[0].effectiveGemm,
                                  cfg.dataflow, cfg.arrayRows,
                                  cfg.arrayCols);
    EXPECT_GT(run.layers[0].actions.filterSram.reads(),
              grid.sramAccessCounts().filterReads);
}

TEST(Simulator, DeeperPrefetchHidesLatency)
{
    // High-latency bandwidth memory: depth-1 prefetch exposes the
    // round trip per fold; deeper prefetch overlaps it.
    Topology topo;
    topo.name = "t";
    topo.layers.push_back(LayerSpec::gemm("g", 512, 256, 64));
    auto total_for = [&](std::uint32_t depth) {
        SimConfig cfg = baseConfig();
        cfg.memory.bandwidthWordsPerCycle = 64.0;
        cfg.memory.prefetchDepth = depth;
        Simulator sim(cfg);
        return sim.run(topo).totalCycles;
    };
    EXPECT_LE(total_for(4), total_for(1));
}

TEST(Dse, SweepCoversFullGrid)
{
    DseSweep sweep;
    sweep.arraySizes = {8, 16};
    sweep.dataflows = {Dataflow::OutputStationary,
                       Dataflow::WeightStationary};
    sweep.sramKbTotals = {256, 1024};
    sweep.base = baseConfig();
    sweep.base.mode = SimMode::Analytical;
    const auto points = runSweep(sweep, tinyTopology());
    EXPECT_EQ(points.size(), 8u);
    for (const auto& p : points) {
        EXPECT_GT(p.cycles, 0u);
        EXPECT_GT(p.energyMj, 0.0);
        EXPECT_GT(p.edp, 0.0);
    }
}

TEST(Dse, ParetoFrontierIsNonDominated)
{
    DseSweep sweep;
    sweep.arraySizes = {8, 16, 32, 64};
    sweep.base = baseConfig();
    sweep.base.mode = SimMode::Analytical;
    const auto points = runSweep(sweep, tinyTopology());
    const auto frontier = paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());
    // No frontier point dominates another.
    for (const auto& a : frontier)
        for (const auto& b : frontier)
            EXPECT_FALSE(a.dominatedBy(b));
    // Every non-frontier point is dominated by some frontier point.
    for (const auto& p : points) {
        bool on_frontier = false;
        bool dominated = false;
        for (const auto& f : frontier) {
            if (f.array == p.array && f.dataflow == p.dataflow
                && f.sramKb == p.sramKb && f.cycles == p.cycles) {
                on_frontier = true;
            }
            if (p.dominatedBy(f))
                dominated = true;
        }
        EXPECT_TRUE(on_frontier || dominated);
    }
    // Extremes are on the frontier.
    EXPECT_EQ(frontier.front().cycles, bestByLatency(points).cycles);
    EXPECT_DOUBLE_EQ(frontier.back().energyMj,
                     bestByEnergy(points).energyMj);
}

TEST(Dse, SelectorsAgreeWithManualScan)
{
    DseSweep sweep;
    sweep.arraySizes = {8, 32};
    sweep.base = baseConfig();
    sweep.base.mode = SimMode::Analytical;
    const auto points = runSweep(sweep, tinyTopology());
    const auto by_edp = bestByEdp(points);
    for (const auto& p : points)
        EXPECT_LE(by_edp.edp, p.edp);
}

TEST(Dse, ReportIsWellFormed)
{
    DseSweep sweep;
    sweep.arraySizes = {8, 16};
    sweep.dataflows = {Dataflow::OutputStationary};
    sweep.base = baseConfig();
    sweep.base.mode = SimMode::Analytical;
    const auto points = runSweep(sweep, tinyTopology());
    std::ostringstream out;
    writeDseReport(out, points);
    std::istringstream in(out.str());
    const CsvTable table = CsvTable::parse(in);
    EXPECT_EQ(table.numRows(), points.size());
    EXPECT_GE(table.findColumn("Pareto"), 0);
}

TEST(Simulator, Im2colAddressingKnob)
{
    Topology topo;
    topo.name = "t";
    topo.layers.push_back(LayerSpec::conv("c", 20, 20, 3, 3, 8, 16,
                                          1));
    SimConfig reuse_cfg = baseConfig();
    reuse_cfg.memory.ifmapSramKb = 1; // tiny: force refetching
    SimConfig expanded_cfg = reuse_cfg;
    expanded_cfg.memory.im2colAddressing = false;
    Simulator reuse_sim(reuse_cfg);
    Simulator expanded_sim(expanded_cfg);
    const auto reuse = reuse_sim.run(topo);
    const auto expanded = expanded_sim.run(topo);
    // Window reuse shrinks DRAM traffic; compute cycles are equal.
    EXPECT_LT(reuse.dramReadWords, expanded.dramReadWords);
    EXPECT_EQ(reuse.computeCycles, expanded.computeCycles);
}

TEST(Simulator, ValidateCatchesBadConfigs)
{
    SimConfig cfg = baseConfig();
    cfg.memory.burstWords = 0;
    EXPECT_THROW(Simulator sim(cfg), FatalError);
    cfg = baseConfig();
    cfg.dram.enabled = true;
    cfg.dram.channels = 0;
    EXPECT_THROW(Simulator sim(cfg), FatalError);
    cfg = baseConfig();
    cfg.memory.filterOffset = 0; // collides with ifmap region
    EXPECT_THROW(Simulator sim(cfg), FatalError);
    cfg = baseConfig();
    cfg.sparsity.optimizedMapping = true;
    cfg.sparsity.blockSize = 1;
    EXPECT_THROW(Simulator sim(cfg), FatalError);
    baseConfig().validate(); // the default is valid
}

TEST(Simulator, SummaryMentionsKeyStats)
{
    SimConfig cfg = baseConfig();
    cfg.energy.enabled = true;
    cfg.dram.enabled = true;
    Simulator sim(cfg);
    const RunResult run = sim.run(tinyTopology());
    std::ostringstream out;
    run.writeSummary(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("sim.totalCycles"), std::string::npos);
    EXPECT_NE(text.find("dram.rowHitRate"), std::string::npos);
    EXPECT_NE(text.find("energy.edp"), std::string::npos);
}

TEST(DseSweep, SramSplitConservesEveryKilobyte)
{
    // The sweep labels a point "N KB total" and splits it 2:1:1 across
    // ifmap/filter/ofmap. Integer division used to drop up to 3 KB on
    // totals not divisible by 4 (6 KB swept as 3+1+1 = 5 KB); the
    // remainder now lands in the ifmap share.
    for (std::uint64_t total : {4u, 5u, 6u, 7u, 64u, 1023u, 1024u}) {
        const core::SramSplit split = core::splitSramKb(total);
        EXPECT_EQ(split.ifmapKb + split.filterKb + split.ofmapKb, total)
            << total;
        EXPECT_EQ(split.filterKb, total / 4) << total;
        EXPECT_EQ(split.ofmapKb, total / 4) << total;
        EXPECT_GE(split.ifmapKb, split.filterKb) << total;
    }
    // Power-of-two totals keep the historical exact 2:1:1 split.
    const core::SramSplit kb1024 = core::splitSramKb(1024);
    EXPECT_EQ(kb1024.ifmapKb, 512u);
    EXPECT_EQ(kb1024.filterKb, 256u);
    EXPECT_EQ(kb1024.ofmapKb, 256u);
}
