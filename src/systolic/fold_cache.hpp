/**
 * @file
 * Fold-replay demand cache. Every full (non-ragged) fold of a layer
 * emits the canonical fold's per-cycle address stream shifted by a
 * per-fold constant offset per operand, because the operand address
 * functions are affine in the fold bases — exactly (for plain GEMM
 * addressing) or piecewise (for conv im2col addressing, where two
 * folds are shift-equivalent when their bases agree modulo one output
 * row / one filter row, and for sparse-WS gathers, where only column
 * folds of the same row fold are equivalent).
 *
 * The cache captures one canonical fold per equivalence class into a
 * compact arena (flat Addr buffer plus per-cycle span offsets, no
 * per-cycle push_back/clear churn) and replays it for every other
 * fold of the class by adding the constant deltas, so every visitor
 * sees a bit-identical cycle/address sequence at a fraction of the
 * generation cost.
 */

#ifndef SCALESIM_SYSTOLIC_FOLD_CACHE_HH
#define SCALESIM_SYSTOLIC_FOLD_CACHE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "systolic/demand.hpp"

namespace scalesim::systolic
{

/** Per-stream constant address shifts of a replayed fold. */
struct ReplayDeltas
{
    std::int64_t ifmap = 0;
    std::int64_t filter = 0;
    std::int64_t ofmap = 0;
};

/** Reusable shift buffers so replays allocate nothing in steady state. */
struct FoldReplayScratch
{
    std::vector<Addr> ifmap;
    std::vector<Addr> filter;
    std::vector<Addr> writes;
};

/**
 * One captured canonical fold: three flat address arenas with
 * per-cycle begin offsets (`begin[c]..begin[c+1]` is cycle c's span).
 * Ofmap accumulate reads are not stored — they are always the write
 * addresses of the same cycle, so replay synthesizes them.
 */
struct FoldCacheEntry
{
    struct Stream
    {
        std::vector<Addr> addrs;
        std::vector<std::uint64_t> begin{0};
    };

    /** Fold indices this entry was captured at (delta reference). */
    std::uint64_t rf = 0;
    std::uint64_t cf = 0;
    Stream ifmap;
    Stream filter;
    Stream writes;

    /** Addresses a replay of this entry emits. */
    Count
    addrCount(bool accumulate) const
    {
        return ifmap.addrs.size() + filter.addrs.size()
            + writes.addrs.size()
            + (accumulate ? writes.addrs.size() : 0);
    }

    /**
     * Emit the captured fold through `visitor`, shifted by `deltas`.
     * Calls visitor.cycle() once per fold cycle; when `accumulate`,
     * the shifted write addresses double as the ofmap read span.
     */
    void replay(DemandVisitor& visitor, Cycle fold_start,
                const ReplayDeltas& deltas, bool accumulate,
                FoldReplayScratch& scratch) const;
};

/**
 * DemandVisitor that forwards every cycle to an inner visitor while
 * appending the spans to a FoldCacheEntry's arenas. Wrapped around
 * the live generator for the first fold of each equivalence class.
 */
class FoldCaptureVisitor : public DemandVisitor
{
  public:
    FoldCaptureVisitor(DemandVisitor& inner, FoldCacheEntry& entry)
        : inner_(inner), entry_(entry)
    {}

    void cycle(Cycle clk, std::span<const Addr> ifmap_reads,
               std::span<const Addr> filter_reads,
               std::span<const Addr> ofmap_reads,
               std::span<const Addr> ofmap_writes) override;

  private:
    DemandVisitor& inner_;
    FoldCacheEntry& entry_;
};

/**
 * Bounded map from fold-equivalence-class key to captured entry.
 * Classes are visited largely in key order, so when the bound is hit
 * the smallest (oldest) key is evicted.
 */
class FoldReplayCache
{
  public:
    explicit FoldReplayCache(std::size_t max_entries = 32)
        : maxEntries_(max_entries == 0 ? 1 : max_entries)
    {}

    FoldCacheEntry*
    find(std::uint64_t key)
    {
        auto it = entries_.find(key);
        return it == entries_.end() ? nullptr : &it->second;
    }

    FoldCacheEntry&
    insert(std::uint64_t key, std::uint64_t rf, std::uint64_t cf)
    {
        if (entries_.size() >= maxEntries_)
            entries_.erase(entries_.begin());
        FoldCacheEntry& entry = entries_[key];
        entry.rf = rf;
        entry.cf = cf;
        return entry;
    }

    std::size_t size() const { return entries_.size(); }

  private:
    std::size_t maxEntries_;
    std::map<std::uint64_t, FoldCacheEntry> entries_;
};

} // namespace scalesim::systolic

#endif // SCALESIM_SYSTOLIC_FOLD_CACHE_HH
