#include "systolic/fold_cache.hpp"

#include "systolic/simd.hpp"

namespace scalesim::systolic
{

namespace
{

/**
 * Whole-arena shift: one SIMD add-constant pass instead of per-address
 * arithmetic inside the cycle loop. A zero delta aliases the arena
 * directly. Negative deltas arrive as two's-complement Addr and the
 * unsigned wraparound addition realizes the signed shift.
 */
const std::vector<Addr>&
shifted(const FoldCacheEntry::Stream& stream, std::int64_t delta,
        std::vector<Addr>& buf)
{
    if (delta == 0)
        return stream.addrs;
    buf.resize(stream.addrs.size());
    simd::addConstant(stream.addrs.data(), buf.data(),
                      stream.addrs.size(), static_cast<Addr>(delta));
    return buf;
}

std::span<const Addr>
cycleSpan(const FoldCacheEntry::Stream& stream,
          const std::vector<Addr>& addrs, std::size_t c)
{
    const std::uint64_t lo = stream.begin[c];
    const std::uint64_t hi = stream.begin[c + 1];
    return {addrs.data() + lo, hi - lo};
}

} // namespace

void
FoldCacheEntry::replay(DemandVisitor& visitor, Cycle fold_start,
                       const ReplayDeltas& deltas, bool accumulate,
                       FoldReplayScratch& scratch) const
{
    const std::vector<Addr>& ifa = shifted(ifmap, deltas.ifmap,
                                           scratch.ifmap);
    const std::vector<Addr>& fla = shifted(filter, deltas.filter,
                                           scratch.filter);
    const std::vector<Addr>& wra = shifted(writes, deltas.ofmap,
                                           scratch.writes);
    const std::size_t cycles = writes.begin.size() - 1;
    for (std::size_t c = 0; c < cycles; ++c) {
        const std::span<const Addr> wr = cycleSpan(writes, wra, c);
        visitor.cycle(fold_start + c, cycleSpan(ifmap, ifa, c),
                      cycleSpan(filter, fla, c),
                      accumulate ? wr : std::span<const Addr>{}, wr);
    }
}

void
FoldCaptureVisitor::cycle(Cycle clk, std::span<const Addr> ifmap_reads,
                          std::span<const Addr> filter_reads,
                          std::span<const Addr> ofmap_reads,
                          std::span<const Addr> ofmap_writes)
{
    auto append = [](FoldCacheEntry::Stream& stream,
                     std::span<const Addr> addrs) {
        stream.addrs.insert(stream.addrs.end(), addrs.begin(),
                            addrs.end());
        stream.begin.push_back(stream.addrs.size());
    };
    append(entry_.ifmap, ifmap_reads);
    append(entry_.filter, filter_reads);
    append(entry_.writes, ofmap_writes);
    inner_.cycle(clk, ifmap_reads, filter_reads, ofmap_reads,
                 ofmap_writes);
}

} // namespace scalesim::systolic
