# Empty compiler generated dependencies file for resnet_dse.
# This may be replaced when dependencies are built.
