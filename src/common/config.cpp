#include "common/config.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/csv.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"

namespace scalesim
{

namespace
{

std::string
canonical(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == ' ' || c == '_' || c == '\t')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

} // namespace

IniFile
IniFile::parseString(const std::string& text, const std::string& name)
{
    IniFile ini;
    ini.name_ = name;
    std::istringstream in(text);
    std::string line;
    std::string section = "general";
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == ';')
            continue;
        if (trimmed.front() == '[') {
            auto close = trimmed.find(']');
            if (close == std::string::npos)
                fatal("%s:%d: unterminated section header",
                      name.c_str(), line_no);
            section = trim(trimmed.substr(1, close - 1));
            continue;
        }
        auto eq = trimmed.find('=');
        if (eq == std::string::npos) {
            // SCALE-Sim cfg also allows "key : value".
            eq = trimmed.find(':');
        }
        if (eq == std::string::npos)
            fatal("%s:%d: expected key = value", name.c_str(), line_no);
        std::string key = trim(trimmed.substr(0, eq));
        std::string value = trim(trimmed.substr(eq + 1));
        if (key.empty())
            fatal("%s:%d: empty key", name.c_str(), line_no);
        ini.sections_[canonical(section)][canonical(key)] =
            Entry{value, line_no};
    }
    return ini;
}

IniFile
IniFile::load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file: %s", path.c_str());
    std::stringstream buffer;
    buffer << in.rdbuf();
    return parseString(buffer.str(), path);
}

void
IniFile::set(std::string_view section, std::string_view key,
             const std::string& value)
{
    sections_[canonical(section)][canonical(key)] = Entry{value, 0};
}

const IniFile::Entry*
IniFile::find(std::string_view section, std::string_view key) const
{
    auto sec = sections_.find(canonical(section));
    if (sec == sections_.end())
        return nullptr;
    auto it = sec->second.find(canonical(key));
    return it == sec->second.end() ? nullptr : &it->second;
}

void
IniFile::badValue(std::string_view section, std::string_view key,
                  const Entry& entry, const char* what) const
{
    fatal("%s:%d: %.*s.%.*s: '%s' %s", name_.c_str(), entry.line,
          static_cast<int>(section.size()), section.data(),
          static_cast<int>(key.size()), key.data(),
          entry.value.c_str(), what);
}

bool
IniFile::has(std::string_view section, std::string_view key) const
{
    return find(section, key) != nullptr;
}

std::string
IniFile::getString(std::string_view section, std::string_view key,
                   const std::string& fallback) const
{
    const Entry* entry = find(section, key);
    return entry ? entry->value : fallback;
}

std::int64_t
IniFile::getInt(std::string_view section, std::string_view key,
                std::int64_t fallback) const
{
    const Entry* entry = find(section, key);
    if (!entry || entry->value.empty())
        return fallback;
    const std::string& raw = entry->value;
    char* end = nullptr;
    errno = 0;
    std::int64_t value = std::strtoll(raw.c_str(), &end, 0);
    if (end == raw.c_str() || *end != '\0')
        badValue(section, key, *entry, "is not an integer");
    if (errno == ERANGE)
        badValue(section, key, *entry, "overflows a 64-bit integer");
    return value;
}

std::uint64_t
IniFile::getUint(std::string_view section, std::string_view key,
                 std::uint64_t fallback) const
{
    const Entry* entry = find(section, key);
    if (!entry || entry->value.empty())
        return fallback;
    std::int64_t value = getInt(section, key);
    if (value < 0)
        badValue(section, key, *entry, "must not be negative");
    return static_cast<std::uint64_t>(value);
}

std::uint32_t
IniFile::getUint32(std::string_view section, std::string_view key,
                   std::uint32_t fallback) const
{
    const Entry* entry = find(section, key);
    if (!entry || entry->value.empty())
        return fallback;
    std::uint64_t value = getUint(section, key);
    if (value > std::numeric_limits<std::uint32_t>::max())
        badValue(section, key, *entry, "overflows a 32-bit integer");
    return static_cast<std::uint32_t>(value);
}

double
IniFile::getDouble(std::string_view section, std::string_view key,
                   double fallback) const
{
    const Entry* entry = find(section, key);
    if (!entry || entry->value.empty())
        return fallback;
    double value = 0.0;
    switch (parseDouble(entry->value, value)) {
      case NumberParse::Ok:
        break;
      case NumberParse::Bad:
        badValue(section, key, *entry, "is not a number");
      case NumberParse::OutOfRange:
        badValue(section, key, *entry, "is out of double range");
    }
    return value;
}

bool
IniFile::getBool(std::string_view section, std::string_view key,
                 bool fallback) const
{
    const Entry* entry = find(section, key);
    if (!entry || entry->value.empty())
        return fallback;
    std::string raw = canonical(entry->value);
    if (raw == "true" || raw == "1" || raw == "yes" || raw == "on")
        return true;
    if (raw == "false" || raw == "0" || raw == "no" || raw == "off")
        return false;
    badValue(section, key, *entry, "is not a boolean");
}

std::string
toString(SparseRep rep)
{
    switch (rep) {
      case SparseRep::Dense: return "dense";
      case SparseRep::Csr: return "csr";
      case SparseRep::Csc: return "csc";
      case SparseRep::EllpackBlock: return "ellpack_block";
    }
    return "dense";
}

SparseRep
sparseRepFromString(std::string_view text)
{
    std::string c = canonical(text);
    if (c == "dense")
        return SparseRep::Dense;
    if (c == "csr")
        return SparseRep::Csr;
    if (c == "csc")
        return SparseRep::Csc;
    if (c == "ellpackblock" || c == "blockedellpack" || c == "ellpack")
        return SparseRep::EllpackBlock;
    throw std::invalid_argument("unknown sparse representation: "
                                + std::string(text));
}

SimConfig
SimConfig::fromIni(const IniFile& ini)
{
    SimConfig cfg;
    cfg.runName = ini.getString("general", "run_name", cfg.runName);

    cfg.arrayRows = ini.getUint32("architecture", "ArrayHeight",
                                  cfg.arrayRows);
    cfg.arrayCols = ini.getUint32("architecture", "ArrayWidth",
                                  cfg.arrayCols);
    if (cfg.arrayRows == 0 || cfg.arrayCols == 0)
        fatal("array dimensions must be non-zero");

    cfg.dataflow = dataflowFromString(
        ini.getString("architecture", "Dataflow", "os"));
    std::string mode = ini.getString("general", "mode", "trace");
    cfg.mode = canonical(mode) == "analytical" ? SimMode::Analytical
                                               : SimMode::Trace;
    cfg.audit = ini.getBool("general", "Audit", cfg.audit);
    cfg.intervalCycles = ini.getUint("general", "IntervalCycles",
                                     cfg.intervalCycles);

    cfg.memory.ifmapSramKb = ini.getUint(
        "architecture", "IfmapSramSzkB", cfg.memory.ifmapSramKb);
    cfg.memory.filterSramKb = ini.getUint(
        "architecture", "FilterSramSzkB", cfg.memory.filterSramKb);
    cfg.memory.ofmapSramKb = ini.getUint(
        "architecture", "OfmapSramSzkB", cfg.memory.ofmapSramKb);
    cfg.memory.ifmapOffset = ini.getUint(
        "architecture", "IfmapOffset", cfg.memory.ifmapOffset);
    cfg.memory.filterOffset = ini.getUint(
        "architecture", "FilterOffset", cfg.memory.filterOffset);
    cfg.memory.ofmapOffset = ini.getUint(
        "architecture", "OfmapOffset", cfg.memory.ofmapOffset);
    cfg.memory.wordBytes = ini.getUint32(
        "architecture", "WordBytes", cfg.memory.wordBytes);
    cfg.memory.bandwidthWordsPerCycle = ini.getDouble(
        "architecture", "Bandwidth", cfg.memory.bandwidthWordsPerCycle);
    cfg.memory.burstWords = ini.getUint32(
        "architecture", "BurstWords", cfg.memory.burstWords);
    cfg.memory.issuePerCycle = ini.getUint32(
        "architecture", "IssuePerCycle", cfg.memory.issuePerCycle);
    cfg.memory.prefetchDepth = ini.getUint32(
        "architecture", "PrefetchDepth", cfg.memory.prefetchDepth);
    cfg.memory.im2colAddressing = ini.getBool(
        "architecture", "Im2colAddressing",
        cfg.memory.im2colAddressing);
    cfg.memory.recordFoldSpans = ini.getBool(
        "architecture", "RecordFoldSpans",
        cfg.memory.recordFoldSpans);
    cfg.foldCache = ini.getBool("architecture", "FoldCache",
                                cfg.foldCache);
    cfg.simdLanes = ini.getUint32("architecture", "SimdLanes",
                                  cfg.simdLanes);
    cfg.simdLatencyPerOp = ini.getUint32(
        "architecture", "SimdLatency", cfg.simdLatencyPerOp);

    cfg.sparsity.enabled = ini.getBool("sparsity", "SparsitySupport",
                                       cfg.sparsity.enabled);
    cfg.sparsity.optimizedMapping = ini.getBool(
        "sparsity", "OptimizedMapping", cfg.sparsity.optimizedMapping);
    if (ini.has("sparsity", "SparseRep")) {
        cfg.sparsity.rep = sparseRepFromString(
            ini.getString("sparsity", "SparseRep"));
    }
    cfg.sparsity.blockSize = ini.getUint32(
        "sparsity", "BlockSize", cfg.sparsity.blockSize);
    cfg.sparsity.seed = ini.getUint("sparsity", "Seed",
                                    cfg.sparsity.seed);

    cfg.dram.enabled = ini.getBool("memory", "DramModel",
                                   cfg.dram.enabled);
    cfg.dram.tech = ini.getString("memory", "Tech", cfg.dram.tech);
    cfg.dram.engine = ini.getString("memory", "DramEngine",
                                    cfg.dram.engine);
    cfg.dram.channels = ini.getUint32("memory", "Channels",
                                      cfg.dram.channels);
    cfg.dram.ranksPerChannel = ini.getUint32(
        "memory", "Ranks", cfg.dram.ranksPerChannel);
    cfg.dram.readQueueSize = ini.getUint32(
        "memory", "ReadQueueSize", cfg.dram.readQueueSize);
    cfg.dram.writeQueueSize = ini.getUint32(
        "memory", "WriteQueueSize", cfg.dram.writeQueueSize);
    cfg.dram.coreClockMhz = ini.getDouble("memory", "CoreClockMhz",
                                          cfg.dram.coreClockMhz);

    cfg.multicore.engine = ini.getString("multicore", "Engine",
                                         cfg.multicore.engine);
    cfg.multicore.jobs = ini.getUint32("multicore", "Jobs",
                                       cfg.multicore.jobs);

    cfg.layout.enabled = ini.getBool("layout", "LayoutModel",
                                     cfg.layout.enabled);
    cfg.layout.banks = ini.getUint32("layout", "Banks",
                                     cfg.layout.banks);
    cfg.layout.portsPerBank = ini.getUint32(
        "layout", "PortsPerBank", cfg.layout.portsPerBank);
    cfg.layout.onChipBandwidth = ini.getUint32(
        "layout", "OnChipBandwidth", cfg.layout.onChipBandwidth);

    cfg.energy.enabled = ini.getBool("energy", "EnergyModel",
                                     cfg.energy.enabled);
    cfg.energy.rowSize = ini.getUint32("energy", "RowSize",
                                       cfg.energy.rowSize);
    cfg.energy.bankSize = ini.getUint32("energy", "BankSize",
                                        cfg.energy.bankSize);
    cfg.energy.frequencyGhz = ini.getDouble("energy", "FrequencyGhz",
                                            cfg.energy.frequencyGhz);
    cfg.energy.node = ini.getString("energy", "Node", cfg.energy.node);
    return cfg;
}

void
SimConfig::validate() const
{
    if (arrayRows == 0 || arrayCols == 0)
        fatal("array dimensions must be non-zero (%ux%u)", arrayRows,
              arrayCols);
    if (simdLanes == 0)
        fatal("SimdLanes must be non-zero");
    if (memory.wordBytes == 0)
        fatal("WordBytes must be non-zero");
    if (memory.burstWords == 0)
        fatal("BurstWords must be non-zero");
    if (memory.issuePerCycle == 0)
        fatal("IssuePerCycle must be non-zero");
    if (memory.prefetchDepth == 0)
        fatal("PrefetchDepth must be non-zero");
    if (memory.bandwidthWordsPerCycle <= 0.0)
        fatal("Bandwidth must be positive");
    if (memory.ifmapSramKb == 0 || memory.filterSramKb == 0
        || memory.ofmapSramKb == 0) {
        fatal("SRAM sizes must be non-zero");
    }
    // Operand regions must not overlap (addresses are word-granular
    // and region extents are workload-dependent, so require distinct,
    // ordered bases with generous gaps).
    if (memory.ifmapOffset >= memory.filterOffset
        || memory.filterOffset >= memory.ofmapOffset) {
        fatal("operand address regions must be ordered "
              "ifmap < filter < ofmap");
    }
    if (sparsity.optimizedMapping && sparsity.blockSize < 2)
        fatal("row-wise sparsity needs BlockSize >= 2 (got %u)",
              sparsity.blockSize);
    if (dram.enabled) {
        if (dram.channels == 0)
            fatal("DRAM needs at least one channel");
        if (dram.readQueueSize == 0 || dram.writeQueueSize == 0)
            fatal("request queues must be non-empty");
        if (dram.coreClockMhz <= 0.0)
            fatal("CoreClockMhz must be positive");
    }
    if (canonical(multicore.engine) != "serial"
        && canonical(multicore.engine) != "epoch") {
        fatal("[multicore] Engine must be serial or epoch (got '%s')",
              multicore.engine.c_str());
    }
    if (layout.enabled) {
        if (layout.banks == 0 || layout.portsPerBank == 0)
            fatal("layout model needs non-zero banks and ports");
        if (layout.onChipBandwidth == 0)
            fatal("OnChipBandwidth must be non-zero");
    }
    if (energy.enabled) {
        if (energy.rowSize == 0 || energy.bankSize == 0)
            fatal("energy RowSize/BankSize must be non-zero");
        if (energy.frequencyGhz <= 0.0)
            fatal("FrequencyGhz must be positive");
    }
}

SimConfig
SimConfig::load(const std::string& path)
{
    return fromIni(IniFile::load(path));
}

SimConfig
SimConfig::tpuV2Like()
{
    // TPU-v2-ish tensor core: 128x128 MXU, large unified buffers.
    SimConfig cfg;
    cfg.runName = "tpu_v2_like";
    cfg.arrayRows = 128;
    cfg.arrayCols = 128;
    cfg.dataflow = Dataflow::WeightStationary;
    cfg.memory.ifmapSramKb = 6144;
    cfg.memory.filterSramKb = 6144;
    cfg.memory.ofmapSramKb = 2048;
    cfg.memory.bandwidthWordsPerCycle = 100.0;
    return cfg;
}

SimConfig
SimConfig::tpuMemoryStudy()
{
    // Section V-C: TPU configuration, 128-entry queues, DDR4-2400.
    SimConfig cfg = tpuV2Like();
    cfg.runName = "tpu_memory_study";
    cfg.dram.enabled = true;
    cfg.dram.tech = "DDR4_2400";
    cfg.dram.channels = 1;
    cfg.dram.readQueueSize = 128;
    cfg.dram.writeQueueSize = 128;
    return cfg;
}

} // namespace scalesim
