/**
 * @file
 * Shared L2 scratchpad (paper §III-B): a line-granular LRU cache that
 * sits between the per-core L1 scratchpads and main memory. Cores in
 * the same row/column of the partition grid request identical input/
 * weight partitions; the L2 serves the duplicates from on-chip storage
 * instead of refetching them from DRAM.
 *
 * Implemented as a MainMemory decorator so any core-side scratchpad
 * can stack on top of any backing memory (bandwidth model or the
 * detailed DRAM system).
 */

#ifndef SCALESIM_MULTICORE_SHARED_L2_HH
#define SCALESIM_MULTICORE_SHARED_L2_HH

#include <list>
#include <unordered_map>

#include "systolic/memory.hpp"

namespace scalesim::multicore
{

/** Shared-L2 configuration. */
struct SharedL2Config
{
    /** Total L2 capacity in words. */
    std::uint64_t capacityWords = 4 * 1024 * 1024;
    /** Allocation/lookup granularity in words. */
    std::uint32_t lineWords = 256;
    /** Hit latency in core cycles. */
    Cycle hitLatency = 8;
    /** L2 port bandwidth shared by all cores, words per cycle. */
    double wordsPerCycle = 256.0;
};

/**
 * Hit/miss statistics of the shared L2. `hitWords`/`missWords` count
 * the words of each *request* served from a resident/missing line
 * (request-overlap granularity), so hitWords + missWords equals the
 * words the cores pulled through the L2 — see
 * MultiCoreTraceResult::l1FillWords. Line-granular refill traffic to
 * the backing memory is visible in that memory's own stats instead.
 */
struct SharedL2Stats
{
    Count lookups = 0;
    Count hits = 0;
    std::uint64_t hitWords = 0;
    std::uint64_t missWords = 0;
    std::uint64_t writeWords = 0;

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) / lookups : 0.0;
    }
};

/** The shared L2 cache as a MainMemory decorator. */
class SharedL2 : public systolic::MainMemory
{
  public:
    SharedL2(const SharedL2Config& cfg, systolic::MainMemory& backing);

    Cycle issueRead(Addr addr, Count words, Cycle now) override;
    Cycle issueWrite(Addr addr, Count words, Cycle now) override;

    Cycle lastIssueWait() const override { return lastWait_; }

    const SharedL2Stats& l2Stats() const { return l2Stats_; }
    systolic::MainMemory& backing() { return backing_; }

    /** Drop all cached lines (new workload). */
    void invalidate();

    /** Rewind the port cursor (see BandwidthMemory::resetTimeline). */
    void resetTimeline() { busFree_ = 0.0; }

  private:
    /** True if the line is resident; inserts it (LRU) otherwise. */
    bool lookup(std::uint64_t line);
    /** Occupy the shared L2 port; returns transfer completion. */
    Cycle busOccupy(Count words, Cycle now);

    SharedL2Config cfg_;
    systolic::MainMemory& backing_;
    SharedL2Stats l2Stats_;
    std::uint64_t capacityLines_;
    std::list<std::uint64_t> lru_;
    // Keyed access only: replacement decisions walk lru_, so hash
    // order never influences hit/miss sequences or the cycle counts
    // derived from them (scalesim_lint unordered-iteration-to-output).
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        index_;
    double busFree_ = 0.0;
    Cycle lastWait_ = 0;
};

} // namespace scalesim::multicore

#endif // SCALESIM_MULTICORE_SHARED_L2_HH
