# Empty dependencies file for table5_latency_energy_edp.
# This may be replaced when dependencies are built.
