
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multicore/nop.cpp" "src/multicore/CMakeFiles/scalesim_multicore.dir/nop.cpp.o" "gcc" "src/multicore/CMakeFiles/scalesim_multicore.dir/nop.cpp.o.d"
  "/root/repo/src/multicore/partition.cpp" "src/multicore/CMakeFiles/scalesim_multicore.dir/partition.cpp.o" "gcc" "src/multicore/CMakeFiles/scalesim_multicore.dir/partition.cpp.o.d"
  "/root/repo/src/multicore/shared_l2.cpp" "src/multicore/CMakeFiles/scalesim_multicore.dir/shared_l2.cpp.o" "gcc" "src/multicore/CMakeFiles/scalesim_multicore.dir/shared_l2.cpp.o.d"
  "/root/repo/src/multicore/system.cpp" "src/multicore/CMakeFiles/scalesim_multicore.dir/system.cpp.o" "gcc" "src/multicore/CMakeFiles/scalesim_multicore.dir/system.cpp.o.d"
  "/root/repo/src/multicore/tensor_core.cpp" "src/multicore/CMakeFiles/scalesim_multicore.dir/tensor_core.cpp.o" "gcc" "src/multicore/CMakeFiles/scalesim_multicore.dir/tensor_core.cpp.o.d"
  "/root/repo/src/multicore/trace_sim.cpp" "src/multicore/CMakeFiles/scalesim_multicore.dir/trace_sim.cpp.o" "gcc" "src/multicore/CMakeFiles/scalesim_multicore.dir/trace_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scalesim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/scalesim_systolic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
