#include "check/audit.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <ostream>

#include "common/log.hpp"

namespace scalesim::check
{

namespace
{

const std::vector<LawInfo>&
lawTable()
{
    static const std::vector<LawInfo> laws = {
        {"spad.stallAccounting",
         "prefetchMiss + drain + bandwidth stall buckets sum to "
         "stallCycles; totalCycles == computeCycles + stallCycles"},
        {"runtime.envelope",
         "trace compute cycles reproduce the analytical "
         "(2R + C + T - 2) * ceil(Sr/R) * ceil(Sc/C) runtime (Eq. 1) "
         "scaled by the layout slowdown"},
        {"foldCache.conservation",
         "replayed + live folds == total folds; replayed addresses "
         "exist iff folds were replayed"},
        {"foldCache.replayFidelity",
         "fold-cache replay emits a byte-identical demand stream to "
         "live generation (checksum spot-check)"},
        {"dram.bankConservation",
         "per-bank row outcomes sum to channel requests; channels sum "
         "to system totals; bytes == requests * burstBytes"},
        {"dram.refreshBound",
         "per-rank all-bank refresh counts stay within the tREFI "
         "cadence of the channel's active window"},
        {"energy.actionAccounting",
         "MAC action classes partition PE-cycles; SRAM accesses + "
         "idle partition port-cycles; NoC words == SRAM words"},
        {"energy.demandAgreement",
         "trace-counted SRAM accesses equal the closed-form "
         "array-edge access counts"},
        {"mem.trafficConservation",
         "scratchpad-issued DRAM words and requests equal the "
         "main-memory model's counters"},
        {"mc.arbConservation",
         "arbiter grants == sum of per-port admitted transactions; "
         "L1 fill words == L2 hit + miss words"},
        {"run.totalsAccounting",
         "run totals equal the repetition-weighted per-layer sums"},
        {"cpi.conservation",
         "CPI-stack buckets partition wall-clock time: per-cause "
         "cycle buckets sum exactly to totalCycles"},
    };
    return laws;
}

/**
 * FNV-1a checksum over a demand stream: every cycle's clock and each
 * stream's addresses, tagged per stream so reordering between streams
 * changes the digest.
 */
class ChecksumVisitor : public systolic::DemandVisitor
{
  public:
    void
    cycle(Cycle clk, std::span<const Addr> ifmap_reads,
          std::span<const Addr> filter_reads,
          std::span<const Addr> ofmap_reads,
          std::span<const Addr> ofmap_writes) override
    {
        mix(clk);
        mixStream(1, ifmap_reads);
        mixStream(2, filter_reads);
        mixStream(3, ofmap_reads);
        mixStream(4, ofmap_writes);
    }

    std::uint64_t digest() const { return hash_; }
    std::uint64_t addresses() const { return addresses_; }

  private:
    void
    mix(std::uint64_t value)
    {
        // FNV-1a, one byte at a time.
        for (unsigned i = 0; i < 8; ++i) {
            hash_ ^= (value >> (8 * i)) & 0xFF;
            hash_ *= 0x100000001B3ull;
        }
    }

    void
    mixStream(std::uint64_t tag, std::span<const Addr> addrs)
    {
        if (addrs.empty())
            return;
        mix(tag);
        mix(addrs.size());
        for (Addr addr : addrs)
            mix(addr);
        addresses_ += addrs.size();
    }

    std::uint64_t hash_ = 0xCBF29CE484222325ull;
    std::uint64_t addresses_ = 0;
};

} // namespace

void
AuditReport::recordCheck(std::string_view law)
{
    ++checks_;
    for (auto& entry : perLaw_) {
        if (entry.first == law) {
            ++entry.second;
            return;
        }
    }
    perLaw_.emplace_back(std::string(law), 1);
}

void
AuditReport::recordViolation(std::string_view law,
                             std::string_view scope,
                             std::string message)
{
    violations_.push_back({std::string(law), std::string(scope),
                           std::move(message)});
}

std::uint64_t
AuditReport::checksForLaw(std::string_view law) const
{
    for (const auto& entry : perLaw_) {
        if (entry.first == law)
            return entry.second;
    }
    return 0;
}

void
AuditReport::clear()
{
    checks_ = 0;
    violations_.clear();
    perLaw_.clear();
}

void
AuditReport::merge(const AuditReport& other)
{
    checks_ += other.checks_;
    violations_.insert(violations_.end(), other.violations_.begin(),
                       other.violations_.end());
    for (const auto& entry : other.perLaw_) {
        bool found = false;
        for (auto& mine : perLaw_) {
            if (mine.first == entry.first) {
                mine.second += entry.second;
                found = true;
                break;
            }
        }
        if (!found)
            perLaw_.push_back(entry);
    }
}

void
AuditReport::registerStats(obs::StatsRegistry& reg,
                           const std::string& prefix) const
{
    reg.addScalar(prefix + ".checks",
                  "invariant relations evaluated",
                  static_cast<double>(checks_));
    reg.addScalar(prefix + ".violations",
                  "conservation laws found broken",
                  static_cast<double>(violations_.size()));
    for (const auto& law : InvariantAuditor::laws()) {
        reg.addVectorElem(prefix + ".checksByLaw", law.name,
                          "relations evaluated per law",
                          static_cast<double>(
                              checksForLaw(law.name)));
        std::uint64_t broken = 0;
        for (const auto& v : violations_) {
            if (v.law == law.name)
                ++broken;
        }
        reg.addVectorElem(prefix + ".violationsByLaw", law.name,
                          "violations per law",
                          static_cast<double>(broken));
    }
}

void
AuditReport::writeReport(std::ostream& out) const
{
    for (const auto& v : violations_) {
        out << "audit violation [" << v.law << "] " << v.scope << ": "
            << v.message << "\n";
    }
}

InvariantAuditor::InvariantAuditor() = default;

const std::vector<LawInfo>&
InvariantAuditor::laws()
{
    return lawTable();
}

void
InvariantAuditor::verify(bool ok, std::string_view law,
                         std::string_view scope, const char* fmt, ...)
{
    report_.recordCheck(law);
    if (ok)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    report_.recordViolation(law, scope, std::move(message));
}

void
InvariantAuditor::auditStallAccounting(
    const systolic::LayerTiming& timing, std::string_view scope)
{
    const char* law = "spad.stallAccounting";
    const Cycle bucket_sum = timing.prefetchStallCycles
        + timing.drainStallCycles + timing.bandwidthStallCycles;
    verify(bucket_sum == timing.stallCycles, law, scope,
           "stall buckets %" PRIu64 " (prefetchMiss %" PRIu64
           " + drain %" PRIu64 " + bandwidth %" PRIu64
           ") != stallCycles %" PRIu64,
           bucket_sum, timing.prefetchStallCycles,
           timing.drainStallCycles, timing.bandwidthStallCycles,
           timing.stallCycles);
    verify(timing.totalCycles
               == timing.computeCycles + timing.stallCycles,
           law, scope,
           "totalCycles %" PRIu64 " != computeCycles %" PRIu64
           " + stallCycles %" PRIu64,
           timing.totalCycles, timing.computeCycles,
           timing.stallCycles);
}

void
InvariantAuditor::auditCpiStack(const obs::CpiStack& cpi,
                                Cycle total_cycles,
                                std::string_view scope)
{
    const char* law = "cpi.conservation";
    const std::uint64_t sum = cpi.total();
    std::string buckets;
    for (unsigned i = 0; i < obs::CpiStack::kBucketCount; ++i) {
        if (!buckets.empty())
            buckets += " + ";
        buckets += format("%s %" PRIu64, obs::CpiStack::bucketName(i),
                          cpi.bucketValue(i));
    }
    verify(sum == total_cycles, law, scope,
           "CPI buckets (%s) sum to %" PRIu64
           " != totalCycles %" PRIu64,
           buckets.c_str(), sum, total_cycles);
}

void
InvariantAuditor::auditRuntimeEnvelope(
    const systolic::LayerTiming& timing,
    const systolic::FoldGrid& grid, double compute_scale,
    std::string_view scope)
{
    const char* law = "runtime.envelope";
    const Cycle fold_len = static_cast<Cycle>(std::llround(
        static_cast<double>(grid.foldCycles()) * compute_scale));
    const Cycle analytical = fold_len * grid.numFolds();
    verify(timing.computeCycles == analytical, law, scope,
           "trace computeCycles %" PRIu64
           " != analytical (2R+C+T-2)*folds = %" PRIu64
           " (foldCycles %" PRIu64 ", scale %.4f, folds %" PRIu64 ")",
           timing.computeCycles, analytical, grid.foldCycles(),
           compute_scale, grid.numFolds());
    verify(timing.folds == grid.numFolds(), law, scope,
           "executed folds %" PRIu64 " != grid folds %" PRIu64,
           static_cast<std::uint64_t>(timing.folds), grid.numFolds());
    verify(timing.totalCycles >= timing.computeCycles, law, scope,
           "totalCycles %" PRIu64 " below computeCycles %" PRIu64
           " (stalls cannot be negative)",
           timing.totalCycles, timing.computeCycles);
}

void
InvariantAuditor::auditFoldCacheConservation(
    const systolic::FoldCacheStats& s, std::string_view scope)
{
    const char* law = "foldCache.conservation";
    verify(s.foldsReplayed + s.foldsLive == s.foldsTotal, law, scope,
           "replayed %" PRIu64 " + live %" PRIu64
           " != total folds %" PRIu64,
           static_cast<std::uint64_t>(s.foldsReplayed),
           static_cast<std::uint64_t>(s.foldsLive),
           static_cast<std::uint64_t>(s.foldsTotal));
    verify((s.addrsReplayed > 0) == (s.foldsReplayed > 0), law, scope,
           "addrsReplayed %" PRIu64 " inconsistent with "
           "foldsReplayed %" PRIu64,
           static_cast<std::uint64_t>(s.addrsReplayed),
           static_cast<std::uint64_t>(s.foldsReplayed));
}

void
InvariantAuditor::auditFoldReplayFidelity(
    const GemmDims& gemm, Dataflow df, std::uint32_t array_rows,
    std::uint32_t array_cols, const systolic::OperandMap& operands,
    std::string_view scope)
{
    systolic::DemandGenerator generator(gemm, df, array_rows,
                                        array_cols, operands);
    if (replayCheckMax_ > 0
        && generator.totalCycles() > replayCheckMax_) {
        return; // spot-check: skip oversized layers
    }
    const char* law = "foldCache.replayFidelity";
    ChecksumVisitor live;
    generator.setFoldCache(false);
    generator.run(live);
    ChecksumVisitor replayed;
    generator.setFoldCache(true);
    generator.run(replayed);
    verify(live.addresses() == replayed.addresses(), law, scope,
           "live generation emitted %" PRIu64
           " addresses, fold-cache replay %" PRIu64,
           live.addresses(), replayed.addresses());
    verify(live.digest() == replayed.digest(), law, scope,
           "demand-stream checksum mismatch: live %016" PRIx64
           " vs replay %016" PRIx64 " (%" PRIu64 " addresses)",
           live.digest(), replayed.digest(), live.addresses());
}

void
InvariantAuditor::auditDramChannel(
    const dram::DramStats& ch,
    const std::vector<dram::BankStats>& banks,
    const dram::DramTiming& timing, std::uint32_t ranks,
    std::string_view scope)
{
    const char* law = "dram.bankConservation";
    std::uint64_t bank_outcomes = 0;
    for (const auto& bank : banks) {
        bank_outcomes += bank.rowHits + bank.rowMisses
            + bank.rowConflicts;
    }
    const std::uint64_t requests = ch.reads + ch.writes;
    verify(bank_outcomes == requests, law, scope,
           "per-bank rowHits+rowMisses+conflicts %" PRIu64
           " != channel reads+writes %" PRIu64,
           bank_outcomes, requests);
    const std::uint64_t outcomes = ch.rowHits + ch.rowMisses
        + ch.rowConflicts;
    verify(outcomes == requests, law, scope,
           "channel row outcomes %" PRIu64 " != requests %" PRIu64,
           outcomes, requests);
    verify(ch.readBytes
               == ch.reads * static_cast<std::uint64_t>(
                   timing.burstBytes),
           law, scope,
           "readBytes %" PRIu64 " != reads %" PRIu64
           " * burstBytes %u",
           ch.readBytes, static_cast<std::uint64_t>(ch.reads),
           timing.burstBytes);
    verify(ch.writeBytes
               == ch.writes * static_cast<std::uint64_t>(
                   timing.burstBytes),
           law, scope,
           "writeBytes %" PRIu64 " != writes %" PRIu64
           " * burstBytes %u",
           ch.writeBytes, static_cast<std::uint64_t>(ch.writes),
           timing.burstBytes);

    law = "dram.refreshBound";
    if (timing.tREFI == 0)
        return;
    if (requests == 0) {
        verify(ch.refreshes == 0, law, scope,
               "idle channel performed %" PRIu64 " refreshes",
               static_cast<std::uint64_t>(ch.refreshes));
        return;
    }
    const std::uint64_t upper = static_cast<std::uint64_t>(ranks)
        * (ch.lastCompletion / timing.tREFI + 1);
    verify(ch.refreshes <= upper, law, scope,
           "refreshes %" PRIu64 " exceed tREFI-cadence bound %" PRIu64
           " (ranks %u, lastCompletion %" PRIu64 ", tREFI %" PRIu64
           ")",
           static_cast<std::uint64_t>(ch.refreshes), upper, ranks,
           ch.lastCompletion, timing.tREFI);
    // Lower bound: refresh catch-up is driven by requests, so only
    // the time up to the last serviced request counts; allow one
    // worst-case request service plus one full interval of slack.
    const Cycle slack = timing.tRFC + timing.tRC + timing.tRCD
        + timing.tRP + timing.tCL + timing.tCWL + timing.tBurst
        + timing.tWR + timing.tWTR + timing.tRTP;
    const Cycle active = ch.lastCompletion > slack
        ? ch.lastCompletion - slack : 0;
    const std::uint64_t intervals = active / timing.tREFI;
    const std::uint64_t lower = intervals > 0 ? intervals - 1 : 0;
    verify(ch.refreshes >= lower, law, scope,
           "refreshes %" PRIu64 " below tREFI-cadence floor %" PRIu64
           " (active window %" PRIu64 " clocks, tREFI %" PRIu64 ")",
           static_cast<std::uint64_t>(ch.refreshes), lower, active,
           timing.tREFI);
}

void
InvariantAuditor::auditDramTotals(
    const dram::DramStats& total,
    const std::vector<dram::DramStats>& channels,
    std::string_view scope)
{
    const char* law = "dram.bankConservation";
    dram::DramStats sum;
    for (const auto& ch : channels)
        sum.merge(ch);
    verify(sum.reads == total.reads && sum.writes == total.writes,
           law, scope,
           "channel request sums %" PRIu64 "r/%" PRIu64
           "w != system totals %" PRIu64 "r/%" PRIu64 "w",
           static_cast<std::uint64_t>(sum.reads),
           static_cast<std::uint64_t>(sum.writes),
           static_cast<std::uint64_t>(total.reads),
           static_cast<std::uint64_t>(total.writes));
    verify(sum.rowHits == total.rowHits
               && sum.rowMisses == total.rowMisses
               && sum.rowConflicts == total.rowConflicts
               && sum.refreshes == total.refreshes,
           law, scope,
           "channel outcome sums (%" PRIu64 "h/%" PRIu64 "m/%" PRIu64
           "c/%" PRIu64 "ref) != system totals (%" PRIu64 "h/%" PRIu64
           "m/%" PRIu64 "c/%" PRIu64 "ref)",
           static_cast<std::uint64_t>(sum.rowHits),
           static_cast<std::uint64_t>(sum.rowMisses),
           static_cast<std::uint64_t>(sum.rowConflicts),
           static_cast<std::uint64_t>(sum.refreshes),
           static_cast<std::uint64_t>(total.rowHits),
           static_cast<std::uint64_t>(total.rowMisses),
           static_cast<std::uint64_t>(total.rowConflicts),
           static_cast<std::uint64_t>(total.refreshes));
}

void
InvariantAuditor::auditDramSystem(const dram::DramSystem& system,
                                  std::string_view scope)
{
    std::vector<dram::DramStats> channels;
    channels.reserve(system.channels());
    for (std::uint32_t ch = 0; ch < system.channels(); ++ch) {
        channels.push_back(system.channelStats(ch));
        auditDramChannel(system.channelStats(ch),
                         system.channelBankStats(ch),
                         system.config().timing,
                         system.config().ranks,
                         std::string(scope) + ".ch"
                             + std::to_string(ch));
    }
    auditDramTotals(system.totalStats(), channels, scope);
}

void
InvariantAuditor::auditEnergyActions(const energy::ActionCounts& counts,
                                     const systolic::FoldGrid& grid,
                                     bool check_demand_agreement,
                                     std::string_view scope)
{
    const char* law = "energy.actionAccounting";
    const std::uint64_t pe_cycles =
        static_cast<std::uint64_t>(grid.arrayRows())
        * grid.arrayCols() * counts.cycles;
    const std::uint64_t mac_actions = counts.macRandom
        + counts.macConstant + counts.macGated;
    verify(mac_actions == pe_cycles, law, scope,
           "MAC actions %" PRIu64 " (random %" PRIu64 " + constant %"
           PRIu64 " + gated %" PRIu64 ") != PE-cycles %" PRIu64,
           mac_actions, static_cast<std::uint64_t>(counts.macRandom),
           static_cast<std::uint64_t>(counts.macConstant),
           static_cast<std::uint64_t>(counts.macGated), pe_cycles);
    // SRAM ports: accesses + idle fill the port capacity exactly,
    // except that an over-subscribed port (ofmap accumulate issues a
    // read AND a write per port-cycle) clamps idle at zero.
    const std::uint64_t ifmap_ports =
        static_cast<std::uint64_t>(grid.arrayRows()) * counts.cycles;
    const std::uint64_t col_ports =
        static_cast<std::uint64_t>(grid.arrayCols()) * counts.cycles;
    const std::uint64_t ifmap_used = counts.ifmapSram.reads();
    verify(ifmap_used + counts.ifmapSram.idle
               == std::max(ifmap_ports, ifmap_used),
           law, scope,
           "ifmap SRAM reads %" PRIu64 " + idle %" PRIu64
           " != port-cycles %" PRIu64,
           ifmap_used,
           static_cast<std::uint64_t>(counts.ifmapSram.idle),
           ifmap_ports);
    const std::uint64_t filter_used = counts.filterSram.reads();
    verify(filter_used + counts.filterSram.idle
               == std::max(col_ports, filter_used),
           law, scope,
           "filter SRAM reads %" PRIu64 " + idle %" PRIu64
           " != port-cycles %" PRIu64,
           filter_used,
           static_cast<std::uint64_t>(counts.filterSram.idle),
           col_ports);
    const std::uint64_t ofmap_used = counts.ofmapSram.reads()
        + counts.ofmapSram.writes();
    verify(ofmap_used + counts.ofmapSram.idle
               == std::max(col_ports, ofmap_used),
           law, scope,
           "ofmap SRAM reads %" PRIu64 " + writes %" PRIu64
           " + idle %" PRIu64 " != clamped port-cycles %" PRIu64,
           static_cast<std::uint64_t>(counts.ofmapSram.reads()),
           static_cast<std::uint64_t>(counts.ofmapSram.writes()),
           static_cast<std::uint64_t>(counts.ofmapSram.idle),
           col_ports);
    const std::uint64_t sram_words = counts.ifmapSram.reads()
        + counts.filterSram.reads() + counts.ofmapSram.reads()
        + counts.ofmapSram.writes();
    verify(counts.nocWords == sram_words, law, scope,
           "NoC words %" PRIu64 " != SRAM<->array words %" PRIu64,
           static_cast<std::uint64_t>(counts.nocWords), sram_words);

    if (!check_demand_agreement)
        return;
    law = "energy.demandAgreement";
    const auto sac = grid.sramAccessCounts();
    verify(counts.ifmapSram.reads() == sac.ifmapReads, law, scope,
           "trace ifmap reads %" PRIu64
           " != closed-form array-edge reads %" PRIu64,
           static_cast<std::uint64_t>(counts.ifmapSram.reads()),
           static_cast<std::uint64_t>(sac.ifmapReads));
    verify(counts.filterSram.reads() == sac.filterReads, law, scope,
           "trace filter reads %" PRIu64
           " != closed-form array-edge reads %" PRIu64,
           static_cast<std::uint64_t>(counts.filterSram.reads()),
           static_cast<std::uint64_t>(sac.filterReads));
    verify(counts.ofmapSram.writes() == sac.ofmapWrites, law, scope,
           "trace ofmap writes %" PRIu64
           " != closed-form array-edge writes %" PRIu64,
           static_cast<std::uint64_t>(counts.ofmapSram.writes()),
           static_cast<std::uint64_t>(sac.ofmapWrites));
    verify(counts.ofmapSram.reads() == sac.ofmapReads, law, scope,
           "trace ofmap accumulate-reads %" PRIu64
           " != closed-form array-edge reads %" PRIu64,
           static_cast<std::uint64_t>(counts.ofmapSram.reads()),
           static_cast<std::uint64_t>(sac.ofmapReads));
}

void
InvariantAuditor::auditMemoryTraffic(
    const systolic::LayerTiming& spad_totals,
    const systolic::MemoryStats& mem, std::string_view scope)
{
    const char* law = "mem.trafficConservation";
    verify(spad_totals.dramReadWords == mem.readWords, law, scope,
           "scratchpad-issued read words %" PRIu64
           " != memory-model read words %" PRIu64,
           spad_totals.dramReadWords,
           static_cast<std::uint64_t>(mem.readWords));
    verify(spad_totals.dramWriteWords == mem.writeWords, law, scope,
           "scratchpad-issued write words %" PRIu64
           " != memory-model write words %" PRIu64,
           spad_totals.dramWriteWords,
           static_cast<std::uint64_t>(mem.writeWords));
    verify(spad_totals.dramReadRequests == mem.readRequests, law,
           scope,
           "scratchpad read requests %" PRIu64
           " != memory-model read requests %" PRIu64,
           static_cast<std::uint64_t>(spad_totals.dramReadRequests),
           static_cast<std::uint64_t>(mem.readRequests));
    verify(spad_totals.dramWriteRequests == mem.writeRequests, law,
           scope,
           "scratchpad write requests %" PRIu64
           " != memory-model write requests %" PRIu64,
           static_cast<std::uint64_t>(spad_totals.dramWriteRequests),
           static_cast<std::uint64_t>(mem.writeRequests));
}

void
InvariantAuditor::auditArbiter(
    const multicore::MultiCoreTraceResult& result, bool l2_enabled,
    std::string_view scope)
{
    const char* law = "mc.arbConservation";
    if (!result.ports.empty()) {
        std::uint64_t admitted = 0;
        for (const auto& port : result.ports)
            admitted += port.readRequests + port.writeRequests;
        verify(result.arb.grants == admitted, law, scope,
               "arbiter grants %" PRIu64
               " != per-port admitted transactions %" PRIu64,
               static_cast<std::uint64_t>(result.arb.grants),
               admitted);
        verify(result.arb.waiters.count == result.arb.grants, law,
               scope,
               "waiters histogram samples %" PRIu64
               " != grants %" PRIu64,
               result.arb.waiters.count,
               static_cast<std::uint64_t>(result.arb.grants));
    }
    if (l2_enabled) {
        verify(result.l1FillWords
                   == result.l2.hitWords + result.l2.missWords,
               law, scope,
               "L1 fill words %" PRIu64 " != L2 hit %" PRIu64
               " + miss %" PRIu64 " words",
               result.l1FillWords, result.l2.hitWords,
               result.l2.missWords);
    }
    // Port-level read-latency split (the per-core feed of the CPI
    // stack): whatever the shared backend left unattributed is folded
    // into readService by MemoryPort, so the four components must
    // cover every cycle of read latency exactly.
    for (std::size_t i = 0; i < result.ports.size(); ++i) {
        const auto& port = result.ports[i];
        const Cycle split = port.readPortWait + port.readQueueWait
            + port.readRefresh + port.readService;
        verify(split == port.totalReadLatency, "cpi.conservation",
               scope,
               "core %zu port read-latency split %" PRIu64
               " (port %" PRIu64 " + queue %" PRIu64 " + refresh %"
               PRIu64 " + service %" PRIu64
               ") != total read latency %" PRIu64,
               i, static_cast<std::uint64_t>(split),
               static_cast<std::uint64_t>(port.readPortWait),
               static_cast<std::uint64_t>(port.readQueueWait),
               static_cast<std::uint64_t>(port.readRefresh),
               static_cast<std::uint64_t>(port.readService),
               static_cast<std::uint64_t>(port.totalReadLatency));
    }
}

void
InvariantAuditor::auditRunTotals(
    Cycle run_total, Cycle run_compute, Cycle run_stall,
    std::uint64_t run_read_words, std::uint64_t run_write_words,
    Cycle sum_total, Cycle sum_compute, Cycle sum_stall,
    std::uint64_t sum_read_words, std::uint64_t sum_write_words,
    std::string_view scope)
{
    const char* law = "run.totalsAccounting";
    verify(run_total == sum_total, law, scope,
           "run totalCycles %" PRIu64
           " != weighted layer sum %" PRIu64,
           run_total, sum_total);
    verify(run_compute == sum_compute, law, scope,
           "run computeCycles %" PRIu64
           " != weighted layer sum %" PRIu64,
           run_compute, sum_compute);
    verify(run_stall == sum_stall, law, scope,
           "run stallCycles %" PRIu64
           " != weighted layer sum %" PRIu64,
           run_stall, sum_stall);
    verify(run_read_words == sum_read_words, law, scope,
           "run dramReadWords %" PRIu64
           " != weighted layer sum %" PRIu64,
           run_read_words, sum_read_words);
    verify(run_write_words == sum_write_words, law, scope,
           "run dramWriteWords %" PRIu64
           " != weighted layer sum %" PRIu64,
           run_write_words, sum_write_words);
}

} // namespace scalesim::check
