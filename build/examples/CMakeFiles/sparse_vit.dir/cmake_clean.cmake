file(REMOVE_RECURSE
  "CMakeFiles/sparse_vit.dir/sparse_vit.cpp.o"
  "CMakeFiles/sparse_vit.dir/sparse_vit.cpp.o.d"
  "sparse_vit"
  "sparse_vit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_vit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
